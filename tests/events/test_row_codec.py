"""The shared-memory row codec: fixed-width wire format of occurrence rows.

Property tests pin the contract the shm transport rests on: every row that
:class:`SnapshotRowCodec` encodes inline decodes to the *exact*
``EventOccurrence.snapshot()`` tuple the pickle transport ships, so both
transports rebuild byte-identical worker mirrors.  Rows the codec cannot
inline (payloads, exotic OIDs, out-of-range integers) must be classified as
fallbacks deterministically — a placeholder row that decodes to ``None`` —
and corrupted or diverged rows must raise :class:`SnapshotError`, never
rebuild a wrong mirror.  A ring-level test pins the synchronous
unpicklable-payload failure the fallback path inherits from the pickle
transport.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.errors import SnapshotError
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import ROW_WIDTH, SnapshotRowCodec

UNIVERSE = (
    EventType(Operation.CREATE, "alpha"),
    EventType(Operation.DELETE, "alpha"),
    EventType(Operation.MODIFY, "alpha", "size"),
    EventType(Operation.MODIFY, "beta"),
    EventType(Operation.RAISE, "tick"),
)

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def random_occurrence(rng: random.Random, eid: int) -> EventOccurrence:
    """A random occurrence mixing inline-encodable and fallback rows."""
    roll = rng.random()
    oid: object
    if roll < 0.35:
        oid = rng.randint(-(1 << 40), 1 << 40)
    elif roll < 0.70:
        oid = f"{rng.choice(('alpha', 'beta'))}#{rng.randint(1, 999)}"
    elif roll < 0.78:
        oid = "oid-" + "x" * rng.randint(23, 40)  # straddles the 26-byte cap
    elif roll < 0.86:
        oid = rng.choice([INT64_MIN - 1, INT64_MAX + 1])  # out of int64
    elif roll < 0.93:
        oid = rng.choice([True, False])  # bool is not an int64 row
    else:
        oid = ("composite", rng.randint(0, 9))  # non-int/str OID
    return EventOccurrence(
        eid=eid,
        event_type=rng.choice(UNIVERSE),
        oid=oid,
        timestamp=rng.randint(1, 1 << 32),
        payload={"k": rng.randint(0, 9)} if rng.random() < 0.25 else {},
    )


def expect_inline(occurrence: EventOccurrence) -> bool:
    """The documented classification: which rows ride the ring inline."""
    if occurrence.payload:
        return False
    oid = occurrence.oid
    if type(oid) is int:
        return INT64_MIN <= oid <= INT64_MAX
    if type(oid) is str:
        return len(oid.encode("utf-8")) <= 26
    return False


def encode_batch(
    encoder: SnapshotRowCodec, occurrences: list[EventOccurrence]
) -> tuple[bytearray, list[bool]]:
    buffer = bytearray(len(occurrences) * ROW_WIDTH)
    inline = [
        encoder.encode_into(buffer, index * ROW_WIDTH, occurrence)
        for index, occurrence in enumerate(occurrences)
    ]
    return buffer, inline


def test_round_trip_matches_pickle_path_property():
    """Inline rows decode to the exact tuples the pickle transport ships."""
    for seed in range(30):
        rng = random.Random(seed)
        occurrences = [
            random_occurrence(rng, eid) for eid in range(1, rng.randint(2, 40))
        ]
        encoder = SnapshotRowCodec()
        decoder = SnapshotRowCodec()
        shipped = 0
        buffer, inline = encode_batch(encoder, occurrences)
        # Ship the incremental type-table slice exactly like the transport.
        decoder.extend_types(encoder.type_snapshots[shipped:])
        shipped = len(encoder.type_snapshots)
        for index, occurrence in enumerate(occurrences):
            assert inline[index] == expect_inline(occurrence), (
                f"seed {seed}: eid {occurrence.eid} classified wrongly"
            )
            decoded = decoder.decode_from(buffer, index * ROW_WIDTH)
            if not inline[index]:
                assert decoded is None, f"seed {seed}: fallback row decoded"
                continue
            snapshot = occurrence.snapshot()
            assert decoded == snapshot, f"seed {seed}: eid {occurrence.eid}"
            # The decoded tuple rebuilds an equal occurrence object, exactly
            # like the pickle path's rows do on the worker side.
            assert EventOccurrence.from_snapshot(decoded) == occurrence


def test_fallback_classification_is_deterministic():
    alpha = EventType(Operation.CREATE, "alpha")
    codec = SnapshotRowCodec()
    buffer = bytearray(ROW_WIDTH)

    def encodes(occurrence: EventOccurrence) -> bool:
        inline = codec.encode_into(buffer, 0, occurrence)
        if not inline:
            # A placeholder row is still written: it must decode to None so
            # slot arithmetic stays one row per occurrence.
            assert codec.decode_from(buffer, 0) is None
        return inline

    def occurrence(**overrides) -> EventOccurrence:
        fields = dict(eid=1, event_type=alpha, oid=7, timestamp=5, payload={})
        fields.update(overrides)
        return EventOccurrence(**fields)

    assert encodes(occurrence())
    assert encodes(occurrence(oid="alpha#1"))
    # Payload-bearing rows always fall back, whatever the OID.
    assert not encodes(occurrence(payload={"k": 1}))
    # bool OIDs are not int64 rows (True would decode as 1, a different OID).
    assert not encodes(occurrence(oid=True))
    # bool eids likewise fall back rather than decoding as 0/1.
    assert not encodes(occurrence(eid=True))
    # Strings wider than the 26-byte field fall back; width is measured in
    # UTF-8 bytes, not characters.
    assert encodes(occurrence(oid="x" * 26))
    assert not encodes(occurrence(oid="x" * 27))
    assert encodes(occurrence(oid="é" * 13))  # 26 UTF-8 bytes
    assert not encodes(occurrence(oid="é" * 14))  # 28 UTF-8 bytes
    # Exotic OID types fall back.
    assert not encodes(occurrence(oid=("composite", 1)))
    assert not encodes(occurrence(oid=None))
    # eid / timestamp / int OIDs outside int64 fall back instead of wrapping.
    assert not encodes(occurrence(eid=INT64_MAX + 1))
    assert not encodes(occurrence(eid=INT64_MIN - 1))
    assert not encodes(occurrence(timestamp=INT64_MAX + 1))
    assert not encodes(occurrence(oid=INT64_MAX + 1))
    assert not encodes(occurrence(oid=INT64_MIN - 1))


def test_int64_boundary_values_encode_inline():
    alpha = EventType(Operation.MODIFY, "alpha", "size")
    encoder = SnapshotRowCodec()
    decoder = SnapshotRowCodec()
    occurrences = [
        EventOccurrence(eid=INT64_MAX, event_type=alpha, oid=INT64_MAX, timestamp=1),
        EventOccurrence(eid=INT64_MIN, event_type=alpha, oid=INT64_MIN, timestamp=1),
        EventOccurrence(eid=3, event_type=alpha, oid="", timestamp=INT64_MAX),
    ]
    buffer, inline = encode_batch(encoder, occurrences)
    assert all(inline)
    decoder.extend_types(encoder.type_snapshots)
    for index, occurrence in enumerate(occurrences):
        assert decoder.decode_from(buffer, index * ROW_WIDTH) == occurrence.snapshot()


def test_type_table_grows_incrementally_and_ships_as_prefix_slices():
    """The encoder interns each type once; the decoder consumes the slices."""
    rng = random.Random(99)
    encoder = SnapshotRowCodec()
    decoder = SnapshotRowCodec()
    shipped = 0
    seen_types: list[EventType] = []
    for eid in range(1, 60):
        event_type = rng.choice(UNIVERSE)
        occurrence = EventOccurrence(
            eid=eid, event_type=event_type, oid=eid, timestamp=eid
        )
        buffer = bytearray(ROW_WIDTH)
        assert encoder.encode_into(buffer, 0, occurrence)
        if event_type not in seen_types:
            seen_types.append(event_type)
        # The table holds exactly the distinct types met so far, in
        # first-met order — re-encoding a known type must not grow it.
        assert encoder.type_snapshots == [t.snapshot() for t in seen_types]
        # Ship only the incremental slice; the decoder's table stays a
        # prefix of the encoder's and every row decodes mid-stream.
        decoder.extend_types(encoder.type_snapshots[shipped:])
        shipped = len(encoder.type_snapshots)
        assert decoder.decode_from(buffer, 0) == occurrence.snapshot()
    assert len(encoder.type_snapshots) == len(UNIVERSE)


def test_unknown_oid_kind_raises_snapshot_error():
    buffer = bytearray(ROW_WIDTH)
    struct.pack_into("<qqIBB26s", buffer, 0, 1, 1, 0, 7, 0, b"")  # kind 7
    codec = SnapshotRowCodec()
    with pytest.raises(SnapshotError, match="unknown OID kind"):
        codec.decode_from(buffer, 0)


def test_unshipped_type_index_raises_snapshot_error():
    encoder = SnapshotRowCodec()
    occurrence = EventOccurrence(
        eid=1, event_type=EventType(Operation.RAISE, "tick"), oid=1, timestamp=1
    )
    buffer = bytearray(ROW_WIDTH)
    assert encoder.encode_into(buffer, 0, occurrence)
    # A decoder that never received the type-table slice must refuse the row
    # (codec divergence) instead of fabricating a type.
    fresh = SnapshotRowCodec()
    with pytest.raises(SnapshotError, match="codec divergence"):
        fresh.decode_from(buffer, 0)


def test_ring_fallback_inherits_unpicklable_payload_guard():
    """The shm ring names the offending eid synchronously, like the pickle path."""
    from repro.cluster.process_pool import _destroy_ring, _SnapshotRing
    from repro.events.event_base import EventBase

    event_base = EventBase()
    event_base.record(EventType(Operation.CREATE, "alpha"), oid="alpha#1", timestamp=1)
    event_base.record(
        EventType(Operation.CREATE, "alpha"),
        oid="alpha#2",
        timestamp=2,
        payload={"callback": lambda: None},  # unpicklable user payload
    )
    ring = _SnapshotRing(16)
    try:
        with pytest.raises(SnapshotError) as excinfo:
            ring.encode_through(event_base, len(event_base.occurrences))
        message = str(excinfo.value)
        assert "picklable" in message
        assert "eid=2" in message  # names the offending occurrence
        # The picklable prefix was still encoded inline.
        assert ring.rows_inline == 1
    finally:
        _destroy_ring(ring.shm)
