"""Tests for event types and event occurrences."""

import pytest

from repro.errors import EventCalculusError
from repro.events.event import (
    EidGenerator,
    EventOccurrence,
    EventType,
    Operation,
    parse_event_type,
)


class TestOperation:
    def test_from_name_accepts_every_operation(self):
        for member in Operation:
            assert Operation.from_name(member.value) is member

    def test_from_name_is_case_insensitive(self):
        assert Operation.from_name("CREATE") is Operation.CREATE
        assert Operation.from_name("  Modify ") is Operation.MODIFY

    def test_from_name_rejects_unknown(self):
        with pytest.raises(EventCalculusError):
            Operation.from_name("truncate")


class TestEventType:
    def test_str_without_attribute(self):
        assert str(EventType(Operation.CREATE, "stock")) == "create(stock)"

    def test_str_with_attribute(self):
        event_type = EventType(Operation.MODIFY, "stock", "quantity")
        assert str(event_type) == "modify(stock.quantity)"

    def test_requires_class_name(self):
        with pytest.raises(EventCalculusError):
            EventType(Operation.CREATE, "")

    def test_attribute_only_for_modify(self):
        with pytest.raises(EventCalculusError):
            EventType(Operation.CREATE, "stock", "quantity")

    def test_is_attribute_specific(self):
        assert EventType(Operation.MODIFY, "stock", "quantity").is_attribute_specific
        assert not EventType(Operation.MODIFY, "stock").is_attribute_specific

    def test_equality_and_hash(self):
        first = EventType(Operation.MODIFY, "stock", "quantity")
        second = EventType(Operation.MODIFY, "stock", "quantity")
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_class_level_matches_attribute_specific(self):
        class_level = EventType(Operation.MODIFY, "stock")
        specific = EventType(Operation.MODIFY, "stock", "quantity")
        assert class_level.matches(specific)

    def test_attribute_specific_does_not_match_other_attribute(self):
        quantity = EventType(Operation.MODIFY, "stock", "quantity")
        minquantity = EventType(Operation.MODIFY, "stock", "minquantity")
        assert not quantity.matches(minquantity)

    def test_matches_requires_same_operation_and_class(self):
        create_stock = EventType(Operation.CREATE, "stock")
        delete_stock = EventType(Operation.DELETE, "stock")
        create_show = EventType(Operation.CREATE, "show")
        assert not create_stock.matches(delete_stock)
        assert not create_stock.matches(create_show)

    def test_matches_is_reflexive(self):
        event_type = EventType(Operation.MODIFY, "stock", "quantity")
        assert event_type.matches(event_type)


class TestParseEventType:
    def test_parse_simple(self):
        assert parse_event_type("create(stock)") == EventType(Operation.CREATE, "stock")

    def test_parse_with_attribute(self):
        parsed = parse_event_type("modify(stock.quantity)")
        assert parsed == EventType(Operation.MODIFY, "stock", "quantity")

    def test_parse_tolerates_whitespace(self):
        parsed = parse_event_type("  modify ( stock . quantity ) ")
        assert parsed == EventType(Operation.MODIFY, "stock", "quantity")

    def test_parse_rejects_missing_parentheses(self):
        with pytest.raises(EventCalculusError):
            parse_event_type("create stock")

    def test_parse_rejects_empty_target(self):
        with pytest.raises(EventCalculusError):
            parse_event_type("create()")

    def test_parse_rejects_unknown_operation(self):
        with pytest.raises(EventCalculusError):
            parse_event_type("upsert(stock)")

    def test_round_trip(self):
        for text in ("create(stock)", "modify(stock.quantity)", "delete(show)"):
            assert str(parse_event_type(text)) == text


class TestEventOccurrence:
    def test_accessor_functions(self):
        event_type = EventType(Operation.MODIFY, "stock", "quantity")
        occurrence = EventOccurrence(
            eid=5, event_type=event_type, oid="o1", timestamp=7
        )
        assert occurrence.type == event_type
        assert occurrence.obj == "o1"
        assert occurrence.event_on_class == "stock"
        assert occurrence.timestamp == 7

    def test_positive_timestamp_required(self):
        with pytest.raises(EventCalculusError):
            EventOccurrence(
                eid=1,
                event_type=EventType(Operation.CREATE, "stock"),
                oid="o1",
                timestamp=0,
            )

    def test_str_shows_eid_and_timestamp(self):
        occurrence = EventOccurrence(
            eid=3,
            event_type=EventType(Operation.CREATE, "stock"),
            oid="o2",
            timestamp=4,
        )
        assert "e3" in str(occurrence)
        assert "t4" in str(occurrence)

    def test_payload_defaults_to_empty(self):
        occurrence = EventOccurrence(
            eid=1,
            event_type=EventType(Operation.CREATE, "stock"),
            oid="o1",
            timestamp=1,
        )
        assert dict(occurrence.payload) == {}


class TestEidGenerator:
    def test_sequential_ids(self):
        generator = EidGenerator()
        assert [generator.next() for _ in range(3)] == [1, 2, 3]

    def test_custom_start(self):
        generator = EidGenerator(start=10)
        assert generator.next() == 10

    def test_start_must_be_positive(self):
        with pytest.raises(ValueError):
            EidGenerator(start=0)
