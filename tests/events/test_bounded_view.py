"""The zero-copy :class:`BoundedView` must be indistinguishable from
:class:`EventWindow` under the whole query API the calculus uses."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import EventCalculusError
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import BoundedView, EventBase, EventWindow

A = EventType(Operation.CREATE, "A")
B = EventType(Operation.CREATE, "B")
MOD_AX = EventType(Operation.MODIFY, "A", "x")
MOD_AY = EventType(Operation.MODIFY, "A", "y")
MOD_A = EventType(Operation.MODIFY, "A")  # class-level pattern

EVENT_TYPES = [A, B, MOD_AX, MOD_AY]
QUERY_TYPES = EVENT_TYPES + [MOD_A]
OIDS = ["o1", "o2", "o3"]

event_types = st.sampled_from(EVENT_TYPES)
oids = st.sampled_from(OIDS)
instants = st.integers(min_value=1, max_value=30)
bounds = st.one_of(st.none(), st.integers(min_value=0, max_value=32))


def build_event_base(entries: list[tuple[EventType, str, int]]) -> EventBase:
    event_base = EventBase()
    for event_type, oid, timestamp in sorted(entries, key=lambda entry: entry[2]):
        event_base.record(event_type, oid, timestamp)
    return event_base


@st.composite
def event_bases(draw, min_size: int = 0, max_size: int = 15) -> EventBase:
    entries = draw(
        st.lists(
            st.tuples(event_types, oids, instants), min_size=min_size, max_size=max_size
        )
    )
    return build_event_base(entries)


@st.composite
def bounded_pairs(draw) -> tuple[EventBase, int | None, int | None]:
    """An event base plus random valid ``(after, until]`` bounds."""
    event_base = draw(event_bases())
    after = draw(bounds)
    until = draw(bounds)
    if after is not None and until is not None and after > until:
        after, until = until, after
    return event_base, after, until


# ---------------------------------------------------------------------------
# Equivalence with the materialized window
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(pair=bounded_pairs())
def test_view_and_window_agree_on_contents(pair):
    event_base, after, until = pair
    view = event_base.view(after=after, until=until)
    window = event_base.window(after=after, until=until)
    assert len(view) == len(window)
    assert view.is_empty() == window.is_empty()
    assert bool(view) == bool(window)
    assert list(view.occurrences) == list(window.occurrences)
    assert [occurrence.eid for occurrence in view] == [
        occurrence.eid for occurrence in window
    ]
    assert view.latest_timestamp() == window.latest_timestamp()
    assert view.timestamps() == window.timestamps()
    assert view.oids() == window.oids()
    assert view.event_types() == window.event_types()


@settings(max_examples=200, deadline=None)
@given(pair=bounded_pairs(), instant=instants, oid=oids)
def test_view_and_window_agree_on_calculus_queries(pair, instant, oid):
    event_base, after, until = pair
    view = event_base.view(after=after, until=until)
    window = event_base.window(after=after, until=until)
    for event_type in QUERY_TYPES:
        assert view.last_timestamp(event_type, instant) == window.last_timestamp(
            event_type, instant
        )
        assert (
            view.last_timestamp_on(event_type, oid, instant)
            == window.last_timestamp_on(event_type, oid, instant)
        )
        assert [occurrence.eid for occurrence in view.occurrences_of(event_type)] == [
            occurrence.eid for occurrence in window.occurrences_of(event_type)
        ]
        assert [
            occurrence.eid
            for occurrence in view.occurrences_of(event_type, until=instant)
        ] == [
            occurrence.eid
            for occurrence in window.occurrences_of(event_type, until=instant)
        ]
    assert view.objects_affected_by(QUERY_TYPES) == window.objects_affected_by(
        QUERY_TYPES
    )
    assert (
        view.objects_affected_by(QUERY_TYPES, until=instant)
        == window.objects_affected_by(QUERY_TYPES, until=instant)
    )
    assert [
        occurrence.eid for occurrence in view.select(lambda o: o.oid == oid)
    ] == [occurrence.eid for occurrence in window.select(lambda o: o.oid == oid)]


@settings(max_examples=100, deadline=None)
@given(pair=bounded_pairs(), lower=st.integers(min_value=0, max_value=32))
def test_timestamps_after_matches_filtered_timestamps(pair, lower):
    event_base, after, until = pair
    view = event_base.view(after=after, until=until)
    assert view.timestamps_after(lower) == [
        stamp for stamp in view.timestamps() if stamp > lower
    ]


# ---------------------------------------------------------------------------
# View-specific behaviour
# ---------------------------------------------------------------------------


class TestBoundedViewBasics:
    def test_invalid_bounds_are_rejected(self):
        event_base = EventBase()
        with pytest.raises(EventCalculusError):
            BoundedView(event_base, after=5, until=3)

    def test_view_is_zero_copy_and_live_below_until(self):
        event_base = build_event_base([(A, "o1", 1)])
        view = event_base.view(after=None, until=None)
        assert len(view) == 1
        event_base.record(B, "o2", 2)
        # No bound: the view sees the appended occurrence without rebuilding.
        assert len(view) == 2
        assert view.latest_timestamp() == 2

    def test_bounded_view_over_eb_is_effectively_frozen(self):
        event_base = build_event_base([(A, "o1", 1), (B, "o2", 3)])
        view = event_base.view(after=None, until=3)
        before = list(view.occurrences)
        # The EB log is append-only in non-decreasing time-stamp order, so new
        # occurrences can never enter a view whose until bound has passed.
        event_base.record(A, "o3", 4)
        assert list(view.occurrences) == before

    def test_empty_window_case(self):
        event_base = build_event_base([(A, "o1", 1)])
        view = event_base.view(after=1, until=1)
        assert view.is_empty()
        assert view.timestamps() == []
        assert view.oids() == set()
        assert view.latest_timestamp() is None
        assert view.last_timestamp(A, 10) is None

    def test_class_level_pattern_sees_types_registered_after_first_query(self):
        """The _indexes_matching cache must be invalidated by new types."""
        event_base = build_event_base([(MOD_AX, "o1", 1)])
        view = event_base.full_view()
        assert view.last_timestamp(MOD_A, 10) == 1  # caches the resolution
        event_base.record(MOD_AY, "o1", 5)
        assert view.last_timestamp(MOD_A, 10) == 5

    def test_occurrences_property_is_cached_until_mutation(self):
        event_base = build_event_base([(A, "o1", 1)])
        first = event_base.occurrences
        assert event_base.occurrences is first
        event_base.record(B, "o2", 2)
        second = event_base.occurrences
        assert second is not first
        assert len(second) == 2

    def test_occurrence_at_returns_log_order(self):
        event_base = build_event_base([(A, "o1", 1), (B, "o2", 2)])
        assert event_base.occurrence_at(0).event_type == A
        assert event_base.occurrence_at(1).event_type == B


class TestTypeIndexFastPath:
    def test_out_of_order_window_construction_still_sorts(self):
        # EventWindow.of sorts, but the _TypeIndex bisect path must also cope
        # with genuinely unsorted input fed directly.
        occurrences = [
            EventOccurrence(eid=1, event_type=A, oid="o1", timestamp=5),
            EventOccurrence(eid=2, event_type=A, oid="o1", timestamp=2),
            EventOccurrence(eid=3, event_type=A, oid="o2", timestamp=9),
        ]
        window = EventWindow.of(occurrences)
        assert window.timestamps() == [2, 5, 9]
        assert window.last_timestamp(A, 6) == 5
        assert window.last_timestamp_on(A, "o1", 9) == 5

    def test_tied_timestamps_keep_insertion_order(self):
        event_base = EventBase()
        event_base.record(A, "o1", 3)
        event_base.record(B, "o2", 3)
        assert [occurrence.eid for occurrence in event_base] == [1, 2]
        assert event_base.timestamps() == [3]
