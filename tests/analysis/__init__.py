"""Test package."""
