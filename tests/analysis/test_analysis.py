"""Tests for traces, metrics and text reporting."""

import pytest

from repro.analysis.metrics import Sweep, Timer, speedup, summarize, timed
from repro.analysis.reporting import render_kv, render_table, render_traces
from repro.analysis.traces import ots_trace, sample_instants, ts_trace
from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation

from tests.conftest import history

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")


@pytest.fixture
def window():
    return history(
        (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 3), (MODIFY_QTY, "o1", 5)
    )


class TestTraces:
    def test_sample_instants_cover_every_stamp_plus_padding(self, window):
        assert sample_instants(window) == [1, 3, 5, 6]

    def test_sample_instants_of_empty_window(self):
        assert sample_instants(history()) == [1]

    def test_ts_trace_values(self, window):
        trace = ts_trace(parse_expression("create(stock)"), window)
        assert trace.values() == [1, 3, 3, 3]
        assert trace.activity() == [True, True, True, True]
        assert len(trace) == 4

    def test_ts_trace_negation(self, window):
        trace = ts_trace(parse_expression("-modify(stock.quantity)"), window)
        assert trace.values() == [1, 3, -5, -5]

    def test_ots_trace_is_per_object(self, window):
        trace = ots_trace(parse_expression("create(stock)"), window, "o2")
        assert trace.values() == [-1, 3, 3, 3]

    def test_trace_custom_instants_and_label(self, window):
        trace = ts_trace(
            parse_expression("create(stock)"), window, instants=[2, 4], label="A"
        )
        assert trace.label == "A"
        assert [point.instant for point in trace] == [2, 4]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| name" in lines[2]
        assert all(line.startswith(("|", "+", "T")) for line in lines)

    def test_render_kv(self):
        text = render_kv({"blocks": 3, "rules": 2})
        assert "blocks" in text and "3" in text

    def test_render_traces(self, window):
        traces = [
            ts_trace(parse_expression("create(stock)"), window, label="A"),
            ts_trace(parse_expression("-create(stock)"), window, label="-A"),
        ]
        text = render_traces(traces, title="Fig. 5")
        assert "Fig. 5" in text
        assert "-A" in text
        assert "+" in text and "-" in text

    def test_render_traces_empty(self):
        assert render_traces([], title="empty") == "empty"


class TestMetrics:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            pass
        with timer.measure():
            pass
        assert timer.sections == 2
        assert timer.elapsed >= 0

    def test_timed_contextmanager(self):
        with timed() as timer:
            sum(range(1000))
        assert timer.elapsed > 0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert summarize([]) == {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0}

    def test_sweep(self):
        sweep = Sweep("n", [1, 2, 3])
        rows = sweep.run(lambda n: {"square": n * n})
        assert sweep.column("square") == [1, 4, 9]
        assert rows[0]["n"] == 1
