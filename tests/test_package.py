"""Package-level tests: public API surface and the error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_lazy_database_export(self):
        from repro import ChimeraDatabase

        assert ChimeraDatabase is repro.ChimeraDatabase

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist  # noqa: B018

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_rules_exports_resolve(self):
        import repro.rules as rules

        for name in rules.__all__:
            assert getattr(rules, name) is not None

    def test_events_exports_resolve(self):
        import repro.events as events

        for name in events.__all__:
            assert getattr(events, name) is not None

    def test_workloads_baselines_analysis_exports_resolve(self):
        import repro.analysis as analysis
        import repro.baselines as baselines
        import repro.workloads as workloads

        for module in (analysis, baselines, workloads):
            for name in module.__all__:
                assert getattr(module, name) is not None


class TestErrorHierarchy:
    def test_every_error_derives_from_chimera_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(error_classes) >= 15
        for error_class in error_classes:
            assert issubclass(error_class, errors.ChimeraError)

    def test_specific_errors_carry_context(self):
        unknown_class = errors.UnknownClassError("ghost")
        assert unknown_class.class_name == "ghost"
        unknown_attribute = errors.UnknownAttributeError("stock", "colour")
        assert (unknown_attribute.class_name, unknown_attribute.attribute) == (
            "stock", "colour"
        )
        duplicate = errors.DuplicateRuleError("r")
        assert duplicate.name == "r"
        non_termination = errors.NonTerminationError(10)
        assert non_termination.limit == 10
        syntax = errors.ExpressionSyntaxError("bad", "a + ", 4)
        assert "position 4" in str(syntax)

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.ChimeraError):
            raise errors.UnknownRuleError("r")
        with pytest.raises(errors.ChimeraError):
            raise errors.EvaluationError("bad")
