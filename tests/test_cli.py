"""Tests for the chimera-events command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.events.persistence import save_event_base
from repro.workloads.stock import build_figure3_event_base


@pytest.fixture
def figure3_log(tmp_path):
    path = tmp_path / "figure3.jsonl"
    save_event_base(build_figure3_event_base(), path)
    return str(path)


class TestParser:
    def test_every_command_is_registered(self):
        parser = build_parser()
        args = parser.parse_args(["variations", "create(stock)"])
        assert args.command == "variations"

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEvaluate:
    def test_active_expression(self, figure3_log, capsys):
        code = main(
            ["evaluate", "create(stock) < modify(stock.quantity)", "--log", figure3_log]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ts value   : 6" in output
        assert "active" in output

    def test_explicit_instant(self, figure3_log, capsys):
        code = main(
            ["evaluate", "modify(stock.quantity)", "--log", figure3_log, "--at", "2"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ts value   : -2" in output

    def test_instance_evaluation(self, figure3_log, capsys):
        code = main(
            [
                "evaluate",
                "create(stock) += modify(stock.quantity)",
                "--log",
                figure3_log,
                "--oid",
                "o2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "object     : o2" in output

    def test_bad_expression_reports_an_error(self, figure3_log, capsys):
        code = main(["evaluate", "create(", "--log", figure3_log])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_log_reports_an_error(self, tmp_path, capsys):
        code = main(
            ["evaluate", "create(stock)", "--log", str(tmp_path / "missing.jsonl")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_explain(self, figure3_log, capsys):
        code = main(["explain", "create(stock) + -create(order)", "--log", figure3_log])
        output = capsys.readouterr().out
        assert code == 0
        assert "create(stock)" in output
        assert "->" in output

    def test_variations(self, capsys):
        code = main(["variations", "create(stock) + -delete(stock)"])
        output = capsys.readouterr().out
        assert code == 0
        assert "V(E)" in output
        assert "Δ+create(stock)" in output
        assert "Δ-delete(stock)" in output

    def test_simplify(self, capsys):
        code = main(["simplify", "--", "--create(stock) + create(stock)"])
        output = capsys.readouterr().out
        assert code == 0
        assert "simplified : create(stock)" in output

    def test_replay(self, figure3_log, capsys):
        code = main(["replay", "--log", figure3_log])
        output = capsys.readouterr().out
        assert code == 0
        assert "e1" in output and "delete(stock)" in output

    def test_stock_demo(self, capsys):
        code = main(
            [
                "stock-demo",
                "--days",
                "1",
                "--operations",
                "10",
                "--items",
                "5",
                "--seed",
                "3",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "checkStockQty" in output
        assert "ts_computations" in output

    def test_stock_demo_without_optimization(self, capsys):
        code = main(
            [
                "stock-demo",
                "--days",
                "1",
                "--operations",
                "10",
                "--items",
                "5",
                "--no-optimization",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ts_skipped_by_filter" in output
