"""Cross-mode differential harness: serial == threads == processes.

The PR-4 process shard workers move the evaluate phase of the trigger check
out of process (mirror Event Bases, worker-resident memos, decisions shipped
back); the correctness bar is the one PR 3 set and this harness pins:
**byte-identical traces, per-rule counters, Trigger Support stats — the
incremental ``instants_sampled`` counter included — and firing order** across
every execution mode, for any stream and any mid-run rule churn.

The scenarios are the seeded PR-3 generators
(``tests/rules/test_planner_equivalence.build_scenario``: overlapping
class/attribute patterns, pure negations, priority ties, empty blocks,
removals / re-adds with fresh definitions / disable-enable flips) replayed
through the *shared* ``run_scenario`` harness of
``tests/cluster/test_shard_equivalence.py`` — extended, not forked — plus
engine-level transaction scenarios that exercise the Event-Base rebind
(worker mirrors must reset) and the commit-time exhaustive recheck (which
the process mode routes through its workers so the memos stay exact).
"""

from __future__ import annotations

import random

from repro.oodb.database import ChimeraDatabase

from tests.cluster.test_shard_equivalence import run_scenario
from tests.rules.test_planner_equivalence import build_scenario

MODES = ("serial", "threads", "processes")


def test_modes_identical_under_randomized_churn():
    """Seeded add/remove/disable churn + mixed-type blocks, all three modes."""
    for seed in (0, 2, 9, 13):
        scenario = build_scenario(seed)
        reference = run_scenario(scenario)
        for shards in (2, 4):
            results = {
                mode: run_scenario(scenario, shards=shards, shard_mode=mode)
                for mode in MODES
            }
            for mode, result in results.items():
                assert result["trace"] == reference["trace"], (
                    f"seed {seed}, {shards} shards, {mode}: trace diverged"
                )
                assert result["counters"] == reference["counters"], (
                    f"seed {seed}, {shards} shards, {mode}: counters diverged"
                )
                assert result["stats"] == reference["stats"], (
                    f"seed {seed}, {shards} shards, {mode}: stats diverged"
                )


def test_process_mode_across_shard_counts():
    """Worker count follows the shard count; equivalence holds for 1–8."""
    scenario = build_scenario(7)
    reference = run_scenario(scenario)
    for shards in (1, 3, 5, 8):
        assert (
            run_scenario(scenario, shards=shards, shard_mode="processes") == reference
        )


def test_modes_identical_with_periodic_exhaustive_recheck():
    """recheck_all (the commit path) must keep worker memos in lockstep."""
    for seed in (4, 11):
        scenario = build_scenario(seed)
        reference = run_scenario(scenario, recheck_every=5)
        for mode in MODES:
            result = run_scenario(scenario, shards=4, shard_mode=mode, recheck_every=5)
            assert result == reference, f"seed {seed}, {mode}: recheck path diverged"


def test_larger_pool_process_mode():
    """A bigger rule pool (multi-shard rules, heavier dealing) stays identical."""
    scenario = build_scenario(202, rule_count=40, block_count=30)
    reference = run_scenario(scenario)
    assert run_scenario(scenario, shards=4, shard_mode="processes") == reference


# ---------------------------------------------------------------------------
# Micro-batched dispatch (PR 5): batch sizes 1-8, every mode byte-identical
# ---------------------------------------------------------------------------


def test_batch_size_one_is_byte_identical_to_per_block():
    """``check_after_blocks`` with one-block trips == the PR-3/PR-4 path."""
    for seed in (0, 7):
        scenario = build_scenario(seed)
        per_block = run_scenario(scenario)
        assert run_scenario(scenario, batch_blocks=1) == per_block
        for mode in MODES:
            assert (
                run_scenario(scenario, shards=4, shard_mode=mode, batch_blocks=1)
                == per_block
            ), f"seed {seed}, {mode}: batch_blocks=1 diverged from per-block"


def test_batched_dispatch_identical_across_modes_for_batch_sizes_1_to_8():
    """For every batch size 1-8: serial == threads == processes == unsharded.

    The unsharded batched run is the reference — traces, per-rule counters
    and Trigger Support stats (``instants_sampled`` included) must be
    byte-identical in every coordinator execution mode at the same batch
    size.
    """
    for seed in (2, 9):
        scenario = build_scenario(seed)
        for batch_blocks in range(1, 9):
            reference = run_scenario(scenario, batch_blocks=batch_blocks)
            for mode in MODES:
                result = run_scenario(
                    scenario, shards=4, shard_mode=mode, batch_blocks=batch_blocks
                )
                for key in ("trace", "counters", "stats"):
                    assert result[key] == reference[key], (
                        f"seed {seed}, batch {batch_blocks}, {mode}: {key} diverged"
                    )


def test_batched_dispatch_across_shard_counts():
    """Batched trips stay identical as the worker count follows the shards."""
    scenario = build_scenario(13)
    for batch_blocks in (3, 8):
        reference = run_scenario(scenario, batch_blocks=batch_blocks)
        for shards in (1, 2, 5, 8):
            result = run_scenario(
                scenario,
                shards=shards,
                shard_mode="processes",
                batch_blocks=batch_blocks,
            )
            assert result == reference, (
                f"batch {batch_blocks}, {shards} shards: batched dispatch diverged"
            )


def test_batched_dispatch_with_periodic_exhaustive_recheck():
    """Commit-style rechecks between trips keep the worker memos in lockstep."""
    scenario = build_scenario(11)
    for batch_blocks in (2, 4):
        reference = run_scenario(
            scenario, recheck_every=batch_blocks * 2, batch_blocks=batch_blocks
        )
        for mode in MODES:
            result = run_scenario(
                scenario,
                shards=4,
                shard_mode=mode,
                recheck_every=batch_blocks * 2,
                batch_blocks=batch_blocks,
            )
            assert result == reference, (
                f"batch {batch_blocks}, {mode}: recheck between trips diverged"
            )


# ---------------------------------------------------------------------------
# Bursty arrivals (PR 9): variable trips x transports x modes byte-identical
# ---------------------------------------------------------------------------

TRANSPORTS = ("pickle", "shm", "tcp")


def _bursty_trip_sizes(seed: int, max_batch: int = 8) -> tuple[int, ...]:
    """A Poisson-ish arrival pattern as a trip partition.

    Idle gaps realize as per-block trips; bursts realize as multi-block
    trips up to ``max_batch`` — exactly the partitions the adaptive
    dispatch controller produces, made deterministic so every execution
    mode and transport can replay the identical structure.
    """
    rng = random.Random(seed)
    sizes = []
    for _ in range(32):
        if rng.random() < 0.5:
            sizes.append(1)  # idle gap: the consumer keeps up
        else:
            sizes.append(min(max_batch, 1 + int(rng.expovariate(0.4))))
    return tuple(sizes)


def test_bursty_trips_identical_across_modes_and_transports():
    """Variable-size trips (bursts + idle gaps, churn at trip boundaries):
    serial / threads / processes x pickle / shm must all match the unsharded
    reference replaying the same partition, byte for byte."""
    for seed in (3, 17):
        scenario = build_scenario(seed)
        sizes = _bursty_trip_sizes(seed * 7 + 1)
        reference = run_scenario(scenario, trip_sizes=sizes)
        assert len({size for size in sizes}) > 1  # genuinely bursty
        for mode in MODES:
            for transport in TRANSPORTS:
                result = run_scenario(
                    scenario,
                    shards=4,
                    shard_mode=mode,
                    transport=transport,
                    trip_sizes=sizes,
                )
                for key in ("trace", "counters", "stats", "metrics"):
                    assert result[key] == reference[key], (
                        f"seed {seed}, {mode} x {transport}: {key} diverged "
                        f"on the bursty partition"
                    )


def test_bursty_trips_with_recheck_and_compiled_checks():
    """The bursty partition composes with commit-style rechecks and the
    compiled exact-check kernel without losing equivalence."""
    scenario = build_scenario(11)
    sizes = _bursty_trip_sizes(29)
    for use_compiled_checks in (False, True):
        reference = run_scenario(
            scenario,
            trip_sizes=sizes,
            recheck_every=6,
            use_compiled_checks=use_compiled_checks,
        )
        for transport in TRANSPORTS:
            result = run_scenario(
                scenario,
                shards=3,
                shard_mode="processes",
                transport=transport,
                trip_sizes=sizes,
                recheck_every=6,
                use_compiled_checks=use_compiled_checks,
            )
            assert result == reference, (
                f"compiled={use_compiled_checks}, {transport}: bursty "
                f"partition with rechecks diverged"
            )


def test_tcp_transport_across_modes_shard_counts_and_batch_sizes():
    """The socket transport is pinned exactly like its in-process peers.

    ``--transport tcp`` over localhost workers must produce byte-identical
    traces / per-rule counters / stats to the unsharded reference (and hence
    to ``pickle`` and ``shm``, which earlier tests pin against the same
    reference) across coordinator modes, shard counts 1-8 and batch sizes
    1-8.
    """
    scenario = build_scenario(9)
    for batch_blocks in range(1, 9):
        reference = run_scenario(scenario, batch_blocks=batch_blocks)
        result = run_scenario(
            scenario,
            shards=4,
            shard_mode="processes",
            transport="tcp",
            batch_blocks=batch_blocks,
        )
        assert result == reference, f"tcp: batch {batch_blocks} diverged"
    reference = run_scenario(scenario, batch_blocks=3)
    for shards in (1, 2, 5, 8):
        for mode in MODES:
            result = run_scenario(
                scenario,
                shards=shards,
                shard_mode=mode,
                transport="tcp",
                batch_blocks=3,
            )
            assert result == reference, f"tcp: {mode} x {shards} shards diverged"


def test_adaptive_ingestor_matches_unsharded_replay_of_realized_trips():
    """The real closed-loop pipeline, pinned end to end: bursty submits
    through an adaptive ``StreamIngestor`` over process shards + shm
    transport, then the *realized* trip partition replayed on an unsharded
    engine — triggerings, consideration order and stats must be identical."""
    from repro.workloads.shard_scaling import build_shard_rules, build_shaped_blocks
    from repro.workloads.rule_scaling import build_scaling_universe
    from repro.workloads.transport_adaptivity import (
        _build_stream_engine,
        _replay_partition,
    )
    from repro.cluster.streaming import StreamIngestor

    universe = build_scaling_universe(160)
    rules = build_shard_rules(160, universe, seed=23)
    blocks = build_shaped_blocks(universe, 36, events_per_block=6, seed=5)
    engine = _build_stream_engine(rules, 2, "processes", "shm")
    try:
        with StreamIngestor(
            engine, max_pending=64, max_batch_blocks=8, adaptive_batch=True
        ) as ingestor:
            for index, block in enumerate(blocks):
                ingestor.submit(block)
                # Idle gaps between bursts of ~6: flushing drains the queue,
                # so the controller sees depth 0 and shrinks back.
                if index % 6 == 5:
                    ingestor.flush()
            ingestor.flush()
            partition = list(ingestor.trip_sizes)
        assert sum(partition) == len(blocks)
        pipelined = {
            "triggerings": {
                state.rule.name: state.times_triggered
                for state in engine.rule_table.states()
            },
            "considerations": [
                record.rule_name for record in engine.considerations
            ],
            "stats": engine.trigger_support.stats.as_dict(),
        }
    finally:
        engine.close()
    replay = _replay_partition(rules, blocks, partition)
    assert pipelined == replay, (
        f"adaptive pipeline diverged from its replay (partition {partition})"
    )


# ---------------------------------------------------------------------------
# Metrics snapshots (PR 8): registry counters pinned equal across modes
# ---------------------------------------------------------------------------


def test_snapshot_counters_identical_across_modes_batches_and_compiled():
    """The PR-8 snapshot counters are as mode-invariant as the stats they fold.

    ``run_scenario`` returns the registry's deterministic ``trigger.*``
    snapshot counters; for every batch size 1-8, compiled checks on and off,
    each coordinator mode must match the unsharded reference byte for byte —
    the observability layer inherits the equivalence guarantee instead of
    weakening it.
    """
    for use_compiled_checks in (False, True):
        scenario = build_scenario(2)
        for batch_blocks in range(1, 9):
            reference = run_scenario(
                scenario,
                batch_blocks=batch_blocks,
                use_compiled_checks=use_compiled_checks,
            )
            assert reference["metrics"], "snapshot must carry trigger.* counters"
            for mode in MODES:
                result = run_scenario(
                    scenario,
                    shards=4,
                    shard_mode=mode,
                    batch_blocks=batch_blocks,
                    use_compiled_checks=use_compiled_checks,
                )
                assert result["metrics"] == reference["metrics"], (
                    f"compiled={use_compiled_checks}, batch {batch_blocks}, "
                    f"{mode}: snapshot counters diverged"
                )


def test_per_shard_candidate_counters_identical_across_modes():
    """Per-shard candidate counters depend on planning, not execution mode.

    ``shard.candidates.N`` counts plan-time candidates per shard; the plan is
    computed coordinator-side in every mode, so at a fixed shard count the
    counters must agree across serial / threads / processes (the unsharded
    reference has no shards, hence no such counters — compare among modes).
    """
    scenario = build_scenario(9)
    prefixes = ("trigger.", "shard.")
    results = {
        mode: run_scenario(
            scenario, shards=4, shard_mode=mode, metric_prefixes=prefixes
        )
        for mode in MODES
    }
    reference = results["serial"]["metrics"]
    candidates = {
        name: value
        for name, value in reference.items()
        if name.startswith("shard.candidates.")
    }
    assert len(candidates) == 4 and sum(candidates.values()) > 0
    for mode, result in results.items():
        assert result["metrics"] == reference, (
            f"{mode}: shard candidate counters diverged"
        )


def test_zero_candidate_trip_merges_empty_stats_in_process_mode():
    """A trip with no candidate rules must merge a pristine stats record.

    ``_evaluate_in_processes`` returns ``[], EvaluationStats()`` without
    contacting (or even spawning) the pool when no rule is assigned; the
    coordinator still merges that empty record into its trip stats.  Pin both
    halves: the merge leaves every counter untouched, and a later candidate
    block accumulates on top of it normally.
    """
    from repro.core.evaluation import EvaluationStats
    from repro.core.parser import parse_expression
    from repro.events.event import EventType, Operation
    from repro.events.event_base import EventBase
    from repro.rules.actions import NO_ACTION
    from repro.rules.conditions import TRUE_CONDITION
    from repro.rules.event_handler import EventHandler
    from repro.rules.rule import Rule
    from repro.cluster.coordinator import ShardCoordinator
    from repro.cluster.sharding import ShardedRuleTable

    table = ShardedRuleTable(2)
    state = table.add(
        Rule(
            name="w",
            events=parse_expression("create(alpha)"),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
        )
    )
    state.reset(0)
    event_base = EventBase()
    handler = EventHandler(event_base)
    support = ShardCoordinator(table, event_base, shard_mode="processes")
    try:

        def feed(class_name: str, stamp: int) -> list:
            event_base.record(
                EventType(Operation.CREATE, class_name),
                oid=f"{class_name}#1",
                timestamp=stamp,
            )
            batch = handler.flush_block()
            return support.check_after_block(
                batch, stamp, 0, type_signature=batch.type_signature
            )

        # While the rule stays triggered it is not a candidate, so the beta
        # block plans nothing at all.
        assert [s.rule.name for s in feed("alpha", 1)] == ["w"]
        baseline = EvaluationStats()
        baseline.merge(support.stats.evaluation)
        assert baseline.evaluations > 0
        assert support.process_pool is not None

        assert feed("beta", 2) == []  # zero-candidate trip
        assert support.stats.evaluation == baseline

        state.mark_considered(2, executed=False)
        assert [s.rule.name for s in feed("alpha", 3)] == ["w"]
        assert support.stats.evaluation.evaluations > baseline.evaluations
    finally:
        support.close()


def test_worker_definitions_pruned_on_rule_removal():
    """A long-lived pool under add/remove churn stays bounded by live rules."""
    from repro.core.parser import parse_expression
    from repro.events.event import EventType, Operation
    from repro.events.event_base import EventBase
    from repro.rules.actions import NO_ACTION
    from repro.rules.conditions import TRUE_CONDITION
    from repro.rules.event_handler import EventHandler
    from repro.rules.rule import Rule
    from repro.cluster.coordinator import ShardCoordinator
    from repro.cluster.sharding import ShardedRuleTable

    def watcher(index: int) -> Rule:
        return Rule(
            name=f"w{index}",
            events=parse_expression("create(alpha)"),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
        )

    table = ShardedRuleTable(2)
    event_base = EventBase()
    handler = EventHandler(event_base)
    support = ShardCoordinator(table, event_base, shard_mode="processes")
    try:
        stamp = 0

        def feed_block() -> None:
            nonlocal stamp
            stamp += 1
            event_base.record(
                EventType(Operation.CREATE, "alpha"), oid="alpha#1", timestamp=stamp
            )
            batch = handler.flush_block()
            support.check_after_block(
                batch, stamp, 0, type_signature=batch.type_signature
            )
            for state in table.states():
                if state.triggered:
                    state.mark_considered(stamp, executed=False)

        # Churn: every generation registers 10 fresh rules, checks a block
        # (shipping their definitions), then removes them again.
        for generation in range(12):
            for index in range(10):
                table.add(watcher(generation * 10 + index)).reset(0)
            feed_block()
            for index in range(10):
                table.remove(f"w{generation * 10 + index}")
        feed_block()  # delivers the queued drops

        pool = support.process_pool
        assert pool is not None
        shipped = sum(len(handle.shipped_defs) for handle in pool._workers)
        pending = sum(len(handle.pending_drops) for handle in pool._workers)
        # 120 rules came and went; the shipping bookkeeping must track only
        # the live population (zero here), not the cumulative churn, and the
        # undelivered drop queue is bounded by the last generation (drops are
        # piggybacked on each worker's next contact — with no live rules the
        # final block contacts nobody).
        assert shipped == 0, shipped
        assert pending <= 10, pending
    finally:
        support.close()


# ---------------------------------------------------------------------------
# Engine-level scenarios: transactions, EB rebinds, deferred rules
# ---------------------------------------------------------------------------


RULES = """
define immediate refill for stock
events modify(quantity)
condition stock(S), occurred(modify(stock.quantity), S), S.quantity < 10
action modify(stock.quantity, S, 25)
priority 2
end

define deferred audit for stock
events create
condition stock(S), occurred(create(stock), S)
action modify(stock.maxquantity, S, 99)
priority 1
end
"""


def _run_database_scenario(shard_mode: str | None, shards: int) -> dict:
    """Two transactions of seeded operations against the full database."""
    db = ChimeraDatabase(shards=shards, shard_mode=shard_mode)
    try:
        db.define_class("stock", {"quantity": int, "maxquantity": int})
        db.define_rules(RULES)
        rng = random.Random(99)
        for _ in range(2):
            with db.transaction() as tx:
                items = [
                    tx.create(
                        "stock", {"quantity": rng.randint(1, 30), "maxquantity": 50}
                    )
                    for _ in range(4)
                ]
                for _ in range(6):
                    item = rng.choice(items)
                    tx.modify(item.oid, "quantity", rng.randint(1, 60))
                tx.delete(rng.choice(items).oid)
        return {
            "considerations": [
                (record.rule_name, record.instant, record.phase, record.executed)
                for record in db.considerations
            ],
            "rules": db.rule_statistics(),
            "stats": db.trigger_statistics(),
        }
    finally:
        db.close()


def test_database_transactions_identical_across_modes():
    """Full-engine runs (rebinds + deferred commit rechecks) line up per mode."""
    reference = _run_database_scenario(None, shards=0)
    for mode in MODES:
        result = _run_database_scenario(mode, shards=4)
        assert result == reference, f"database scenario diverged in {mode} mode"
