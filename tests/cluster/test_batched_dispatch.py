"""Unit tests for the micro-batched dispatch path (PR 5).

The behavioral bar — byte-identical traces/counters/stats across execution
modes for batch sizes 1-8 — lives in ``test_mode_equivalence.py``; this
module pins the *structural* properties of the batched path: one worker
trip per micro-batch, combined deltas, trip-local skip of already-triggered
rules, and the engine-level ``run_stream_blocks`` seam.
"""

from __future__ import annotations

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.sharding import ShardedRuleTable
from repro.core.parser import parse_expression
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventBase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.event_handler import EventHandler
from repro.rules.rule import Rule
from repro.rules.rule_table import RuleTable
from repro.rules.trigger_support import TriggerSupport

ALPHA = EventType(Operation.CREATE, "alpha")
BETA = EventType(Operation.CREATE, "beta")


def watcher(name: str, expression: str) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(expression),
        condition=TRUE_CONDITION,
        action=NO_ACTION,
    )


def block(eid: int, stamp: int, event_type: EventType = ALPHA) -> list[EventOccurrence]:
    return [EventOccurrence(eid=eid, event_type=event_type, oid="o1", timestamp=stamp)]


class _Pipeline:
    """A tiny handler + coordinator pipeline over a fresh Event Base."""

    def __init__(self, rules, shards: int = 2, shard_mode: str = "processes"):
        self.event_base = EventBase()
        self.table = ShardedRuleTable(shards)
        for rule in rules:
            self.table.add(rule).reset(0)
        self.handler = EventHandler(self.event_base)
        self.support = ShardCoordinator(
            self.table, self.event_base, shard_mode=shard_mode
        )

    def segments(self, blocks):
        built = []
        for occurrences in blocks:
            batch = self.handler.store_external(occurrences)
            built.append((batch, occurrences[-1].timestamp))
        return built

    def close(self):
        self.support.close()


class TestTripTransport:
    def test_one_worker_message_per_trip(self):
        pipeline = _Pipeline(
            [watcher("w0", "create(alpha)"), watcher("w1", "create(beta)")]
        )
        try:
            segments = pipeline.segments(
                [block(1, 1), block(2, 2, BETA), block(3, 3), block(4, 4, BETA)]
            )
            pipeline.support.check_after_blocks(segments, 0)
            pool = pipeline.support.process_pool
            assert pool is not None
            stats = pool.transport_stats()
            # One trip covering four blocks; each consulted worker contacted
            # at most once for the whole micro-batch.
            assert stats["dispatches"] == 1
            assert stats["blocks_dispatched"] == 4
            assert stats["worker_round_trips"] <= pool.num_workers
            cluster = pipeline.support.cluster_stats
            assert cluster.dispatch_trips == 1
            assert cluster.blocks_dispatched == 4
        finally:
            pipeline.close()

    def test_trips_scale_with_trips_not_blocks(self):
        pipeline = _Pipeline([watcher("w0", "create(alpha)")])
        try:
            stream = [block(eid, eid) for eid in range(1, 13)]
            for start in range(0, 12, 4):
                segments = pipeline.segments(stream[start : start + 4])
                pipeline.support.check_after_blocks(segments, 0)
                for state in pipeline.table.states():
                    if state.triggered:
                        state.mark_considered(start + 4, executed=False)
            pool = pipeline.support.process_pool
            stats = pool.transport_stats()
            assert stats["dispatches"] == 3  # 12 blocks, 3 trips
            assert stats["blocks_dispatched"] == 12
        finally:
            pipeline.close()

    def test_definition_shipped_once_per_trip(self):
        """A rule planned in several segments ships its definition once."""
        pipeline = _Pipeline([watcher("w0", "create(alpha)")], shards=1)
        try:
            segments = pipeline.segments([block(1, 1), block(2, 2), block(3, 3)])
            pipeline.support.check_after_blocks(segments, 0)
            pool = pipeline.support.process_pool
            (handle,) = pool._workers
            assert handle.shipped_defs == {
                "w0": pipeline.table.get("w0").definition_order
            }
        finally:
            pipeline.close()

    def test_candidate_free_trip_never_contacts_the_pool(self):
        pipeline = _Pipeline([watcher("w0", "create(beta)")])
        try:
            # First trip: w0's V(E) filter is not applicable yet (no window
            # evaluated non-empty), so it rides along and the pool is
            # contacted once.
            pipeline.support.check_after_blocks(pipeline.segments([block(1, 1)]), 0)
            pool = pipeline.support.process_pool
            assert pool is not None
            trips_before = pool.transport_stats()["dispatches"]
            # Steady state: alpha-only blocks route no candidates for a
            # beta-watcher, so the whole trip skips the pool.
            segments = pipeline.segments([block(2, 2), block(3, 3)])
            pipeline.support.check_after_blocks(segments, 0)
            assert pool.transport_stats()["dispatches"] == trips_before
        finally:
            pipeline.close()

    def test_empty_blocks_still_count_in_stats(self):
        pipeline = _Pipeline([watcher("w0", "create(alpha)")])
        try:
            batch_a = pipeline.handler.store_external(block(1, 1))
            batch_empty = pipeline.handler.store_external([])
            batch_b = pipeline.handler.store_external(block(2, 2))
            pipeline.support.check_after_blocks(
                [(batch_a, 1), (batch_empty, 1), (batch_b, 2)], 0
            )
            assert pipeline.support.stats.blocks == 3
        finally:
            pipeline.close()


class TestTripLocalSkip:
    def test_rule_triggered_early_in_trip_is_not_re_evaluated(self):
        """A rule that triggers in segment 1 is skipped in later segments.

        Exactly what the per-block path does (triggered rules are not
        planned), so ``ts_computations`` must count one check however many
        later blocks of the trip the plan speculatively included — in every
        mode.
        """
        for shard_mode in ("serial", "threads", "processes"):
            pipeline = _Pipeline(
                [watcher("w0", "create(alpha)")], shard_mode=shard_mode
            )
            try:
                segments = pipeline.segments([block(1, 1), block(2, 2), block(3, 3)])
                newly = pipeline.support.check_after_blocks(segments, 0)
                assert [state.rule.name for state in newly] == ["w0"]
                state = pipeline.table.get("w0")
                assert state.triggered
                assert state.ts_computations == 1, shard_mode
                assert state.times_triggered == 1, shard_mode
            finally:
                pipeline.close()

    def test_pending_rider_skipped_after_first_nonempty_window(self):
        """The per-block pending-set semantics hold inside a trip.

        A beta-watcher riding as a pending-full-check rule on an all-alpha
        trip is evaluated once (first block, window non-empty, filter
        becomes applicable) and then skipped — per-block processing would
        have dropped it from the pending set and never planned it again.
        ``ts_computations`` must therefore be 1 in every mode, exactly like
        the per-block path.
        """
        # The per-block reference.
        reference = _Pipeline([watcher("w0", "create(beta)")], shard_mode="serial")
        try:
            for batch, now in reference.segments(
                [block(1, 1), block(2, 2), block(3, 3)]
            ):
                reference.support.check_after_block(
                    batch, now, 0, type_signature=batch.type_signature
                )
            expected = reference.table.get("w0").ts_computations
        finally:
            reference.close()
        assert expected == 1

        for shard_mode in ("serial", "threads", "processes"):
            pipeline = _Pipeline([watcher("w0", "create(beta)")], shard_mode=shard_mode)
            try:
                segments = pipeline.segments([block(1, 1), block(2, 2), block(3, 3)])
                pipeline.support.check_after_blocks(segments, 0)
                state = pipeline.table.get("w0")
                assert not state.triggered
                assert state.ts_computations == expected, shard_mode
            finally:
                pipeline.close()

        # And the unsharded batched path agrees.
        event_base = EventBase()
        table = RuleTable()
        table.add(watcher("w0", "create(beta)")).reset(0)
        handler = EventHandler(event_base)
        support = TriggerSupport(table, event_base)
        segments = []
        for eid in (1, 2, 3):
            segments.append((handler.store_external(block(eid, eid)), eid))
        support.check_after_blocks(segments, 0)
        assert table.get("w0").ts_computations == expected

    def test_unsharded_trip_matches_the_same_semantics(self):
        event_base = EventBase()
        table = RuleTable()
        table.add(watcher("w0", "create(alpha)")).reset(0)
        handler = EventHandler(event_base)
        support = TriggerSupport(table, event_base)
        segments = []
        for eid in (1, 2, 3):
            batch = handler.store_external(block(eid, eid))
            segments.append((batch, eid))
        newly = support.check_after_blocks(segments, 0)
        assert [state.rule.name for state in newly] == ["w0"]
        assert table.get("w0").ts_computations == 1


class TestEngineStreamBlocks:
    def make_engine(self, shards: int = 0, shard_mode: str | None = None):
        from repro.events.clock import TransactionClock
        from repro.oodb.objects import ObjectStore
        from repro.oodb.operations import OperationExecutor
        from repro.oodb.schema import Schema
        from repro.rules.executor import RuleEngine

        schema = Schema()
        store = ObjectStore()
        event_base = EventBase()
        clock = TransactionClock()
        operations = OperationExecutor(
            schema, store, event_base, clock, emit_select_events=False
        )
        return RuleEngine(
            schema=schema,
            store=store,
            event_base=event_base,
            clock=clock,
            operations=operations,
            shards=shards,
            shard_mode=shard_mode,
        )

    def stream(self, count: int):
        return [
            block(eid, eid, ALPHA if eid % 2 else BETA) for eid in range(1, count + 1)
        ]

    def outcome(self, engine):
        return {
            "counters": {
                state.rule.name: (state.times_triggered, state.times_considered)
                for state in engine.rule_table.states()
            },
            "considerations": [
                record.rule_name for record in engine.considerations
            ],
            "events": len(engine.event_base),
            "stats": engine.trigger_support.stats.as_dict(),
        }

    def test_single_batch_trip_is_byte_identical_to_run_stream_block(self):
        per_block = self.make_engine()
        batched = self.make_engine()
        for rules_engine in (per_block, batched):
            rules_engine.rule_table.add(watcher("w0", "create(alpha)")).reset(0)
        for one_block in self.stream(6):
            per_block.run_stream_block(one_block)
            batched.run_stream_blocks([one_block])
        assert self.outcome(per_block) == self.outcome(batched)

    def test_chunked_stream_identical_across_modes(self):
        """run_stream_blocks chunks: unsharded == serial == processes."""
        chunks = [self.stream(12)[index : index + 3] for index in range(0, 12, 3)]

        def drive(shards, shard_mode):
            engine = self.make_engine(shards, shard_mode)
            engine.rule_table.add(watcher("w0", "create(alpha)")).reset(0)
            engine.rule_table.add(watcher("w1", "create(alpha) + create(beta)")).reset(
                0
            )
            try:
                for chunk in chunks:
                    engine.run_stream_blocks(chunk)
                return self.outcome(engine)
            finally:
                engine.close()

        reference = drive(0, None)
        for mode in ("serial", "threads", "processes"):
            assert drive(4, mode) == reference, mode

    def test_blocks_keep_their_boundaries(self):
        engine = self.make_engine()
        engine.run_stream_blocks(self.stream(5))
        # Each batch flushed as its own execution block.
        assert engine.event_handler.blocks_processed == 5
        assert len(engine.event_base) == 5

    def test_misaligned_signatures_are_rejected(self):
        import pytest

        engine = self.make_engine()
        with pytest.raises(ValueError, match="align"):
            engine.run_stream_blocks(self.stream(2), type_signatures=[None])
