"""Failure and reconnect semantics of the TCP shard transport.

Byte-identical happy paths are pinned by the cross-mode differential harness
(``test_mode_equivalence.py`` runs every scenario under ``transport="tcp"``);
these tests pin the distributed-systems edges the socket path adds on top of
the pipe pool's contracts:

* the length-prefixed frame codec fails **loudly** on a corrupted header —
  both connection ends raise ``SnapshotError`` and refuse to resynchronize,
  so a desynced byte stream can never feed a wrong mirror;
* a worker killed mid-trip poisons the pool exactly like a dead pipe worker
  (``ShardWorkerError`` with the transport failure chained, every later call
  failing loudly);
* a worker that *reconnects* between trips is re-synced — definitions
  re-shipped at their current ``definition_order`` version, mirror rebuilt
  from position 0 — and the run's triggerings and counters come out
  byte-identical to an uninterrupted run (memo state is decision-invariant
  by design, so a fresh memo changes no outcome);
* externally-started workers (the ``chimera-events worker`` CLI entrypoint,
  ``$CHIMERA_TCP_SPAWN=0`` deployment story) handshake into the same pool,
  and a bad token is rejected before any state ships.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.cluster.net import (
    SocketFrameConnection,
    TcpTransport,
    _read_frame,
)
from repro.cluster.transport import WorkerConfig
from repro.errors import ShardWorkerError, SnapshotError

from tests.cluster.test_process_pool import build_support, feed_block


# ---------------------------------------------------------------------------
# Frame codec: loud corruption, both ends
# ---------------------------------------------------------------------------


def test_socket_frame_connection_round_trip():
    left_sock, right_sock = socket.socketpair()
    left = SocketFrameConnection(left_sock)
    right = SocketFrameConnection(right_sock)
    try:
        left.send_bytes(b"hello frames")
        assert right.recv_bytes() == b"hello frames"
        right.send_bytes(b"")
        assert left.recv_bytes() == b""  # zero-length payloads survive
        payload = bytes(range(256)) * 512
        left.send_bytes(payload)
        assert right.recv_bytes() == payload
    finally:
        left.close()
        right.close()


def test_socket_frame_connection_corrupt_header_is_loud():
    left_sock, right_sock = socket.socketpair()
    right = SocketFrameConnection(right_sock)
    try:
        left_sock.sendall(b"XXXX\x01\x00\x00\x00garbage")
        with pytest.raises(SnapshotError, match="socket frame header is corrupt"):
            right.recv_bytes()
    finally:
        left_sock.close()
        right.close()


def test_socket_frame_connection_peer_close_is_eof():
    left_sock, right_sock = socket.socketpair()
    right = SocketFrameConnection(right_sock)
    try:
        left_sock.close()
        with pytest.raises(EOFError):
            right.recv_bytes()
    finally:
        right.close()


def test_async_read_frame_rejects_corrupt_header():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"NOPE\x04\x00\x00\x00ruin")
        reader.feed_eof()
        await _read_frame(reader)

    with pytest.raises(SnapshotError, match="socket frame header is corrupt"):
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Pool semantics over sockets: mid-trip death, reconnect re-sync, corruption
# ---------------------------------------------------------------------------


def test_killed_tcp_worker_mid_trip_poisons_pool():
    table, event_base, handler, support = build_support(transport="tcp")
    try:
        assert feed_block(event_base, handler, support, 1)
        pool = support.process_pool
        assert pool is not None
        assert pool.transport == "tcp"
        for handle in pool._workers:
            handle.process.kill()
            handle.process.join(timeout=5.0)
        with pytest.raises(ShardWorkerError, match="gone|died") as excinfo:
            feed_block(event_base, handler, support, 2)
        # The transport-level failure rides along as the chained cause.
        assert isinstance(excinfo.value.__cause__, (EOFError, OSError))
        # Poisoned: the pool refuses further work instead of desyncing.
        with pytest.raises(ShardWorkerError, match="broken"):
            feed_block(event_base, handler, support, 3)
    finally:
        support.close()


def _run_tcp_blocks(blocks: int, interrupt_after: int | None = None) -> dict:
    """Feed ``blocks`` alpha blocks over tcp, optionally bouncing a worker."""
    table, event_base, handler, support = build_support(transport="tcp")
    try:
        trace = []
        for stamp in range(1, blocks + 1):
            newly = feed_block(event_base, handler, support, stamp)
            trace.append(tuple(sorted(state.rule.name for state in newly)))
            if interrupt_after is not None and stamp == interrupt_after:
                pool = support.process_pool
                # Bounce the worker the rules actually home to (every
                # watcher shares alpha's shard), so the re-sync is real.
                loaded = next(
                    handle.worker_id
                    for handle in pool._workers
                    if handle.shipped_defs
                )
                pool._transport.respawn_worker(loaded)
        pool = support.process_pool
        return {
            "trace": tuple(trace),
            "counters": {
                state.rule.name: state.times_triggered for state in table.states()
            },
            "reconnects": pool.reconnects,
            "defs_shipped": pool.defs_shipped,
        }
    finally:
        support.close()


def test_reconnect_between_trips_resyncs_defs_and_mirror():
    uninterrupted = _run_tcp_blocks(6)
    assert uninterrupted["reconnects"] == 0
    bounced = _run_tcp_blocks(6, interrupt_after=3)
    assert bounced["reconnects"] == 1
    # The replacement worker starts empty: its rules re-ship at their current
    # definition_order version (and its mirror re-syncs from position 0).
    assert bounced["defs_shipped"] > uninterrupted["defs_shipped"]
    # ...and none of that changes a single outcome: triggering trace and
    # per-rule counters are byte-identical to the uninterrupted run.
    assert bounced["trace"] == uninterrupted["trace"]
    assert bounced["counters"] == uninterrupted["counters"]


def test_corrupt_frame_on_the_wire_poisons_pool_loudly():
    table, event_base, handler, support = build_support(transport="tcp")
    try:
        assert feed_block(event_base, handler, support, 1)
        pool = support.process_pool
        # Target the worker the rules home to, so the next trip consults it.
        handle = next(h for h in pool._workers if h.shipped_defs)
        channel = handle.connection

        async def inject_garbage():
            channel._writer.write(b"JUNKJUNKJUNKJUNK")
            await channel._writer.drain()

        # Desync the worker's inbound byte stream: its next read sees a bad
        # magic, raises SnapshotError and the process dies — the coordinator
        # must surface that as a loud pool failure, never a wrong mirror.
        asyncio.run_coroutine_threadsafe(inject_garbage(), channel._loop).result(5)
        deadline = time.monotonic() + 10.0
        while handle.process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not handle.process.is_alive()
        with pytest.raises(ShardWorkerError, match="gone|died"):
            feed_block(event_base, handler, support, 2)
        with pytest.raises(ShardWorkerError, match="broken"):
            feed_block(event_base, handler, support, 3)
    finally:
        support.close()


# ---------------------------------------------------------------------------
# External workers: the CLI entrypoint and the no-spawn deployment mode
# ---------------------------------------------------------------------------


def _cli_worker(host: str, port: int, worker_id: int, token: str) -> None:
    cli_main(
        [
            "worker",
            "--host",
            host,
            "--port",
            str(port),
            "--worker-id",
            str(worker_id),
            "--token",
            token,
        ]
    )


def test_external_cli_workers_join_a_no_spawn_pool():
    transport = TcpTransport(spawn_workers=False, timeout=30.0)
    config = WorkerConfig("logical", False, False)
    launch_error: list[BaseException] = []

    def launch():
        try:
            transport.launch(2, config)
        except BaseException as exc:  # surfaced after join
            launch_error.append(exc)

    thread = threading.Thread(target=launch, daemon=True)
    thread.start()
    try:
        # launch() binds + publishes the rendezvous coordinates first, then
        # blocks until both workers handshake.
        deadline = time.monotonic() + 10.0
        while transport.token is None and time.monotonic() < deadline:
            time.sleep(0.02)
        assert transport.token is not None
        context = multiprocessing.get_context(transport.start_method)
        workers = [
            context.Process(
                target=_cli_worker,
                args=(transport.host, transport.port, worker_id, transport.token),
                daemon=True,
            )
            for worker_id in range(2)
        ]
        for process in workers:
            process.start()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "launch never saw both workers"
        assert not launch_error, launch_error
        for worker_id in range(2):
            assert transport.channel(worker_id) is not None
    finally:
        transport.shutdown()
        thread.join(timeout=5.0)


def test_worker_with_bad_token_is_rejected():
    transport = TcpTransport(spawn_workers=False, timeout=30.0)
    thread = threading.Thread(
        target=lambda: transport.launch(1, WorkerConfig("logical", False, False)),
        daemon=True,
    )
    thread.start()
    try:
        deadline = time.monotonic() + 10.0
        while transport.token is None and time.monotonic() < deadline:
            time.sleep(0.02)
        # endpoint.start() runs after the no-spawn banner; wait for the
        # listener to accept before handshaking.
        from repro.cluster.net import run_worker

        with pytest.raises(ShardWorkerError, match="rejected"):
            run_worker(
                transport.host,
                transport.port,
                0,
                "not-the-token",
                retry_seconds=10.0,
            )
    finally:
        transport.shutdown()
        thread.join(timeout=5.0)
