"""DispatchController unit tests on synthetic metric feeds.

The controller's only inputs are the ``ingest.queue_depth`` gauge and the
``trip.dispatch`` latency histogram, so every control path is drivable with
a plain :class:`MetricsRegistry` and hand-set instrument values — no stream,
no shards.  These tests pin the control law itself: widen-on-backlog toward
the bound, shrink-to-1 on idle, hysteresis damping, the latency-pressure
widen path, inertness without instruments, and the advisory-only shard
rebalance readout.
"""

from __future__ import annotations

import pytest

from repro.cluster.streaming import DispatchController
from repro.obs.registry import MetricsRegistry


def make_controller(max_batch_blocks: int = 8, **kwargs):
    metrics = MetricsRegistry(enabled=True)
    controller = DispatchController(metrics, max_batch_blocks, **kwargs)
    return metrics, controller


def feed(metrics: MetricsRegistry, controller: DispatchController, depths) -> list[int]:
    """Set the queue-depth gauge to each value and observe once per value."""
    gauge = metrics.gauge("ingest.queue_depth")
    bounds = []
    for depth in depths:
        gauge.set(depth)
        bounds.append(controller.observe())
    return bounds


def test_backlog_widens_toward_max_and_stops_there():
    metrics, controller = make_controller(max_batch_blocks=8)
    assert controller.batch_blocks == 1  # earns its way up, never starts wide
    # Sustained depth >= widen_depth doubles the bound every `hysteresis`
    # observations: 1 -> 2 -> 4 -> 8, then holds at the configured max.
    bounds = feed(metrics, controller, [5] * 10)
    assert bounds == [1, 2, 2, 4, 4, 8, 8, 8, 8, 8]
    assert metrics.gauge("controller.batch_blocks").value == 8
    assert metrics.counter("controller.widened").value == 3


def test_idle_shrinks_back_to_one():
    metrics, controller = make_controller(max_batch_blocks=8)
    feed(metrics, controller, [5] * 6)
    assert controller.batch_blocks == 8
    # A drained queue needs `hysteresis` consecutive zero observations, then
    # drops straight to 1 (no gradual descent — latency mode is binary).
    bounds = feed(metrics, controller, [0, 0, 0])
    assert bounds == [8, 1, 1]
    assert metrics.counter("controller.shrunk").value == 1
    assert metrics.gauge("controller.batch_blocks").value == 1


def test_hysteresis_damps_alternating_signals():
    metrics, controller = make_controller(max_batch_blocks=8, hysteresis=2)
    # Depth alternating deep/drained never completes a same-direction streak:
    # the bound must hold at 1 through arbitrary oscillation.
    bounds = feed(metrics, controller, [5, 0, 5, 0, 5, 0, 5, 0])
    assert bounds == [1] * 8
    assert metrics.counter("controller.widened").value == 0
    assert metrics.counter("controller.shrunk").value == 0
    # Intermediate depths (0 < depth < widen_depth, no latency pressure) are
    # neutral: they reset the streak without steering it.
    feed(metrics, controller, [5])
    bounds = feed(metrics, controller, [1, 5, 1, 5])
    assert bounds == [1] * 4


def test_latency_pressure_widens_below_depth_threshold():
    metrics, controller = make_controller(max_batch_blocks=4, widen_depth=10)
    # Depth 1 is far below widen_depth, but a slow dispatch path projects a
    # drain time over the latency budget: depth * p99 = 1 * ~0.1s >= 0.050s.
    metrics.histogram("trip.dispatch").observe(0.1)
    bounds = feed(metrics, controller, [1, 1])
    assert bounds == [1, 2]
    assert metrics.counter("controller.widened").value == 1
    # The same depth with a fast dispatch path stays per-block.
    metrics2, controller2 = make_controller(max_batch_blocks=4, widen_depth=10)
    metrics2.histogram("trip.dispatch").observe(0.0001)
    assert feed(metrics2, controller2, [1, 1, 1, 1]) == [1, 1, 1, 1]


def test_disabled_registry_is_static_pr5_behavior():
    metrics = MetricsRegistry(enabled=False)
    controller = DispatchController(metrics, 8)
    assert controller.enabled is False
    # Inert: the static bound, every observation, regardless of signals.
    assert [controller.observe() for _ in range(5)] == [8] * 5
    assert controller.rebalance_advice() is None


def test_max_batch_blocks_one_is_inert():
    metrics, controller = make_controller(max_batch_blocks=1)
    assert controller.enabled is False  # no room to adapt in
    assert feed(metrics, controller, [5, 5, 5]) == [1, 1, 1]


def test_rebalance_advice_reads_candidate_counters():
    metrics, controller = make_controller()
    # No advice before any per-shard candidate counters exist.
    assert controller.rebalance_advice() is None
    metrics.counter("shard.candidates.0").inc(30)
    assert controller.rebalance_advice() is None  # a single shard is not skew
    metrics.counter("shard.candidates.1").inc(10)
    advice = controller.rebalance_advice()
    assert advice == {"max": 30.0, "mean": 20.0, "imbalance": 1.5}
    assert metrics.gauge("controller.shard_imbalance").value == 1.5


def test_constructor_validates_knobs():
    metrics = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError, match="max_batch_blocks"):
        DispatchController(metrics, 0)
    with pytest.raises(ValueError, match="hysteresis"):
        DispatchController(metrics, 8, hysteresis=0)
