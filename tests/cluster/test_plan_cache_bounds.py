"""LRU bounds on the coordinator's route cache and the shard plan caches.

ROADMAP (PR-3 follow-up): the signature memos are "fine for steady
workloads, unbounded for adversarial ones" — a stream whose block signatures
never repeat used to grow both the coordinator's full-signature route cache
and every shard's sub-signature plan cache without limit.  These tests pin
the bound: under a never-repeating signature stream the caches hold at most
``plan_cache_size`` entries (memory stays flat), eviction is LRU (recurring
shapes stay resident), and the cap is threaded through the public
constructors.
"""

from __future__ import annotations

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.sharding import DEFAULT_PLAN_CACHE_SIZE, ShardedRuleTable
from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase
from repro.oodb.database import ChimeraDatabase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.rule import Rule

import pytest


def build_coordinator(
    classes: int, plan_cache_size: int | None
) -> tuple[ShardedRuleTable, ShardCoordinator, list[EventType]]:
    table = ShardedRuleTable(4, plan_cache_size=plan_cache_size)
    universe: list[EventType] = []
    for index in range(classes):
        name = f"cls{index}"
        universe.append(EventType(Operation.CREATE, name))
        table.add(
            Rule(
                name=f"watch_{name}",
                events=parse_expression(f"create({name})"),
                condition=TRUE_CONDITION,
                action=NO_ACTION,
            )
        ).reset(0)
    return table, ShardCoordinator(table, EventBase()), universe


def test_never_repeating_signatures_hold_caches_flat():
    cap = 32
    table, coordinator, universe = build_coordinator(classes=400, plan_cache_size=cap)
    # Every signature is distinct (a sliding pair over 400 types): an
    # unbounded memo would end up with hundreds of entries per cache.
    for index in range(len(universe) - 1):
        signature = frozenset(universe[index : index + 2])
        coordinator.plan_sharded(signature)
        assert len(coordinator._route_cache) <= cap
        assert all(size <= cap for size in table.plan_cache_sizes())
    assert coordinator.cluster_stats.route_cache_evictions > 0
    assert table.plan_cache_evictions > 0
    # The bound is a cap, not a flush: the caches sit exactly at capacity.
    assert len(coordinator._route_cache) == cap


def test_eviction_is_lru_recurring_shapes_stay_hot():
    cap = 8
    table, coordinator, universe = build_coordinator(classes=64, plan_cache_size=cap)
    hot = frozenset(universe[:2])
    coordinator.plan_sharded(hot)
    for index in range(2, 40):
        coordinator.plan_sharded(frozenset(universe[index : index + 1]))
        coordinator.plan_sharded(hot)  # re-touch: must never be evicted
    hits_before = table.plan_cache_hits
    coordinator.plan_sharded(hot)
    assert table.plan_cache_hits > hits_before  # still cached -> pure hits
    assert hot in coordinator._route_cache


def test_plan_cache_size_validation_and_default():
    assert ShardedRuleTable(2).plan_cache_size == DEFAULT_PLAN_CACHE_SIZE
    assert ShardedRuleTable(2, plan_cache_size=7).plan_cache_size == 7
    with pytest.raises(ValueError):
        ShardedRuleTable(2, plan_cache_size=0)


def test_cap_threads_through_the_database_facade():
    db = ChimeraDatabase(shards=3, plan_cache_size=11)
    try:
        assert db.rule_table.plan_cache_size == 11
    finally:
        db.close()


def test_bounded_caches_do_not_change_decisions():
    """A tiny cap (constant re-planning) must stay semantically invisible."""
    from tests.cluster.test_shard_equivalence import run_scenario
    from tests.rules.test_planner_equivalence import build_scenario
    from repro.events.event_base import EventBase as EB
    from repro.rules.event_handler import EventHandler

    scenario = build_scenario(6)
    reference = run_scenario(scenario)

    # Re-run sharded with plan_cache_size=1 (worst case: every lookup evicts).
    event_base = EB()
    table = ShardedRuleTable(4, plan_cache_size=1)
    for rule in scenario.rules:
        table.add(rule).reset(0)
    handler = EventHandler(event_base)
    support = ShardCoordinator(table, event_base)
    trace = []
    for position, block in enumerate(scenario.blocks):
        for name in scenario.removals.get(position, ()):
            if name in table:
                table.remove(name)
        for rule in scenario.readds.get(position, ()):
            if rule.name not in table:
                table.add(rule).reset(0)
        for name in scenario.flips.get(position, ()):
            if name not in table:
                continue
            state = table.get(name)
            table.disable(name) if state.enabled else table.enable(name)
        batch = handler.store_external(block)
        now = block[-1].timestamp if block else (event_base.latest_timestamp() or 1)
        newly = support.check_after_block(
            batch, now, 0, type_signature=batch.type_signature
        )
        considered = []
        while (selected := table.select_for_consideration()) is not None:
            considered.append(selected.rule.name)
            selected.mark_considered(now, executed=False)
        trace.append((position, [state.rule.name for state in newly], considered, []))
    assert trace == reference["trace"]
    assert support.stats.as_dict() == reference["stats"]
