"""Sharded-vs-unsharded equivalence of the trigger pipeline.

The shard/coordinator subsystem must be *semantically invisible*, exactly
like the PR-2 subscription index before it: for any stream, any shard count
and any mid-run table churn, the :class:`ShardCoordinator` must produce the
same triggered sets, the same per-rule counters and the same priority-order
firing sequence as the single-table :class:`TriggerSupport` — in serial
deterministic mode *and* on the worker pool.

The scenarios come from ``tests/rules/test_planner_equivalence.py`` (random
rules over overlapping class/attribute patterns, pure negations, priority
ties, empty blocks, removals / re-adds / disable-enable flips mid-run); here
they are replayed across shard counts 1–8.  ``run_scenario`` is shared with
``tests/cluster/test_mode_equivalence.py``, which replays the same churn
across the serial / threads / processes execution modes.
"""

from __future__ import annotations

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.sharding import ShardedRuleTable
from repro.events.event_base import EventBase
from repro.rules.event_handler import EventHandler
from repro.rules.rule_table import RuleTable
from repro.rules.trigger_support import TriggerSupport

from tests.rules.test_planner_equivalence import Scenario, build_scenario


def run_scenario(
    scenario: Scenario,
    shards: int = 0,
    parallel: bool = False,
    shard_mode: str | None = None,
    recheck_every: int = 0,
    batch_blocks: int = 1,
    trip_sizes: tuple[int, ...] | None = None,
    use_compiled_checks: bool | None = None,
    transport: str | None = None,
    metric_prefixes: tuple[str, ...] = ("trigger.",),
) -> dict:
    """Execute a scenario; ``shards=0`` is the single-table reference.

    ``shard_mode`` selects the coordinator's execution mode explicitly
    (``parallel=True`` remains the PR-3 spelling of ``"threads"``);
    ``recheck_every=N`` runs a commit-style ``recheck_all`` after every Nth
    block, exercising the exhaustive path the process mode must also route
    through its workers.  ``batch_blocks=N`` coalesces the stream into
    N-block micro-batches checked through ``check_after_blocks`` — one
    dispatch trip per chunk, with churn applied at trip boundaries and
    considerations drained once per trip; ``batch_blocks=1`` goes through
    the same call and is byte-identical to the per-block path.
    ``trip_sizes`` overrides the fixed batch with an explicit trip
    partition (cycled if it runs out) — the bursty-arrival replay: the
    variable-size trips an adaptive consumer realizes under Poisson bursts
    and idle gaps, still with churn at trip boundaries.
    ``use_compiled_checks`` selects the compiled exact-check closures
    (``None`` defers to the ambient ``$CHIMERA_COMPILED_CHECKS`` default).
    ``transport`` selects the process mode's delta transport (pickled
    snapshots or the shared-memory row ring; ``None`` defers to
    ``$CHIMERA_TRANSPORT``).
    ``metric_prefixes`` filters which snapshot counters of the PR-8 metrics
    registry land in the returned ``"metrics"`` key — the default pins the
    deterministic ``trigger.*`` counters; mode-dependent families
    (``cluster.*``, ``worker.*``, ``pool.*``) are deliberately excluded so
    whole-result equality across execution modes keeps holding.
    """
    event_base = EventBase()
    if shards > 0:
        table: RuleTable = ShardedRuleTable(shards)
    else:
        table = RuleTable()
    removed: set[str] = set()
    disabled: set[str] = set()
    for rule in scenario.rules:
        table.add(rule).reset(0)
    handler = EventHandler(event_base)
    if shards > 0:
        support: TriggerSupport = ShardCoordinator(
            table,
            event_base,
            parallel=parallel,
            shard_mode=shard_mode,
            use_compiled_checks=use_compiled_checks,
            transport=transport,
        )
    else:
        support = TriggerSupport(
            table, event_base, use_compiled_checks=use_compiled_checks
        )

    spans: list[tuple[int, int]] = []
    position = 0
    while position < len(scenario.blocks):
        if trip_sizes:
            size = max(1, trip_sizes[len(spans) % len(trip_sizes)])
        else:
            size = batch_blocks
        spans.append((position, min(position + size, len(scenario.blocks))))
        position += size
    trace: list[tuple] = []
    for start, stop in spans:
        chunk = scenario.blocks[start:stop]
        # Churn for every position of the chunk applies at the trip boundary
        # (no table mutation mid-trip — the trip's plans are resolved up
        # front against one consistent table state).
        for position in range(start, start + len(chunk)):
            for name in scenario.removals.get(position, ()):
                if name not in removed:
                    table.remove(name)
                    removed.add(name)
            for rule in scenario.readds.get(position, ()):
                if rule.name in removed:
                    table.add(rule).reset(0)
                    removed.discard(rule.name)
            for name in scenario.flips.get(position, ()):
                if name in removed:
                    continue
                if name in disabled:
                    table.enable(name)
                    disabled.discard(name)
                else:
                    table.disable(name)
                    disabled.add(name)
        segments = []
        for block in chunk:
            batch = handler.store_external(block)
            now = block[-1].timestamp if block else (event_base.latest_timestamp() or 1)
            segments.append((batch, now))
        newly = support.check_after_blocks(segments, 0)
        now = segments[-1][1]
        considered: list[str] = []
        while (selected := table.select_for_consideration()) is not None:
            considered.append(selected.rule.name)
            selected.mark_considered(now, executed=False)
        rechecked: list[str] = []
        if recheck_every and (start + len(chunk)) % recheck_every == 0:
            rechecked = [state.rule.name for state in support.recheck_all(now, 0)]
            while (selected := table.select_for_consideration()) is not None:
                rechecked.append(selected.rule.name)
                selected.mark_considered(now, executed=False)
        trace.append(
            (
                start,
                [state.rule.name for state in newly],
                considered,
                rechecked,
            )
        )

    counters = {
        state.rule.name: (state.times_triggered, state.times_considered)
        for state in table.states()
    }
    stats = support.stats.as_dict()
    metrics = {
        name: value
        for name, value in support.metrics.snapshot()["counters"].items()
        if name.startswith(metric_prefixes)
    }
    if shards > 0:
        support.close()
    return {"trace": trace, "counters": counters, "stats": stats, "metrics": metrics}


def test_sharded_equals_single_table_across_shard_counts():
    for seed in range(12):
        scenario = build_scenario(seed)
        reference = run_scenario(scenario)
        for shards in range(1, 9):
            sharded = run_scenario(scenario, shards=shards)
            assert sharded == reference, f"seed {seed}: {shards} shards != single table"


def test_parallel_mode_equals_single_table():
    for seed in (3, 7, 11, 42):
        scenario = build_scenario(seed)
        reference = run_scenario(scenario)
        for shards in (2, 4, 8):
            parallel = run_scenario(scenario, shards=shards, parallel=True)
            assert parallel == reference, (
                f"seed {seed}: parallel {shards}-shard run != single table"
            )


def test_sharded_equals_single_table_with_larger_rule_pools():
    for seed in (101, 202):
        scenario = build_scenario(seed, rule_count=40, block_count=30)
        reference = run_scenario(scenario)
        for shards in (1, 5, 8):
            sharded = run_scenario(scenario, shards=shards)
            assert sharded == reference, f"seed {seed}: {shards} shards"


def test_newly_triggered_order_is_definition_order():
    """The merged newly-triggered list preserves the single-table ordering."""
    scenario = build_scenario(5)
    reference = run_scenario(scenario)
    sharded = run_scenario(scenario, shards=8)
    # The trace comparison above already covers this, but pin the ordering
    # property explicitly: newly-triggered names arrive definition-ordered.
    for (_, newly, _, _), (_, sharded_newly, _, _) in zip(
        reference["trace"], sharded["trace"]
    ):
        assert newly == sharded_newly
