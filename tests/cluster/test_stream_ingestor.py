"""StreamIngestor: pipelined ingestion equivalence, back-pressure and errors."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.streaming import StreamIngestor
from repro.events.clock import TransactionClock
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventBase
from repro.oodb.objects import ObjectStore
from repro.oodb.operations import OperationExecutor
from repro.oodb.schema import Schema
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.executor import RuleEngine
from repro.rules.rule import Rule
from repro.core.parser import parse_expression

STOCK = EventType(Operation.CREATE, "stock")
ORDER = EventType(Operation.CREATE, "order")


def make_engine(shards: int = 0) -> RuleEngine:
    schema = Schema()
    store = ObjectStore()
    event_base = EventBase()
    clock = TransactionClock()
    operations = OperationExecutor(
        schema, store, event_base, clock, emit_select_events=False
    )
    return RuleEngine(
        schema=schema,
        store=store,
        event_base=event_base,
        clock=clock,
        operations=operations,
        shards=shards,
    )


def add_rule(engine: RuleEngine, name: str, events: str) -> None:
    engine.rule_table.add(
        Rule(
            name=name,
            events=parse_expression(events),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
        )
    ).reset(0)


def blocks(count: int, per_block: int = 4) -> list[list[EventOccurrence]]:
    stream: list[list[EventOccurrence]] = []
    eid = 1
    for stamp in range(1, count + 1):
        block = []
        for offset in range(per_block):
            event_type = STOCK if (stamp + offset) % 2 else ORDER
            block.append(
                EventOccurrence(
                    eid=eid, event_type=event_type, oid=f"o{offset}", timestamp=stamp
                )
            )
            eid += 1
        stream.append(block)
    return stream


class TestPipelinedEquivalence:
    @pytest.mark.parametrize("shards", [0, 4])
    def test_pipelined_matches_direct(self, shards):
        stream = blocks(30)
        direct = make_engine(shards)
        add_rule(direct, "stock_watch", "create(stock)")
        add_rule(direct, "pair", "create(stock) + create(order)")
        for block in stream:
            direct.run_stream_block(block)

        pipelined = make_engine(shards)
        add_rule(pipelined, "stock_watch", "create(stock)")
        add_rule(pipelined, "pair", "create(stock) + create(order)")
        with StreamIngestor(pipelined, max_pending=4, max_batch_blocks=1) as ingestor:
            for block in stream:
                ingestor.submit(block)
            ingestor.flush()
        assert ingestor.stats.processed_blocks == len(stream)
        assert ingestor.stats.dropped_blocks == 0

        for name in ("stock_watch", "pair"):
            assert (
                direct.rule_table.get(name).times_triggered
                == pipelined.rule_table.get(name).times_triggered
            )
        assert [record.rule_name for record in direct.considerations] == [
            record.rule_name for record in pipelined.considerations
        ]
        assert len(direct.event_base) == len(pipelined.event_base)

    def test_submission_order_is_block_order(self):
        engine = make_engine()
        with StreamIngestor(engine, max_pending=2) as ingestor:
            for block in blocks(10):
                ingestor.submit(block)
            ingestor.flush()
        stamps = [occ.timestamp for occ in engine.event_base.occurrences]
        assert stamps == sorted(stamps)


class TestBackpressureAndLifecycle:
    def test_bounded_queue_limits_producer_runahead(self):
        engine = make_engine()
        gate = threading.Event()
        original = engine.run_stream_block

        def slow_run(batch, bulk=True, type_signature=None):
            gate.wait(timeout=5)
            original(batch, bulk=bulk, type_signature=type_signature)

        engine.run_stream_block = slow_run
        ingestor = StreamIngestor(engine, max_pending=2, max_batch_blocks=1).start()
        stream = blocks(6)
        for block in stream[:3]:
            ingestor.submit(block)  # 1 in flight + 2 queued
        blocked_done = threading.Event()

        def blocked_submit():
            ingestor.submit(stream[3])
            blocked_done.set()

        producer = threading.Thread(target=blocked_submit, daemon=True)
        producer.start()
        time.sleep(0.05)
        assert not blocked_done.is_set(), "submit should block on a full queue"
        gate.set()
        producer.join(timeout=5)
        assert blocked_done.is_set()
        ingestor.close()
        assert ingestor.stats.processed_blocks == 4
        assert ingestor.stats.max_queue_depth <= 2

    def test_submit_after_close_is_rejected(self):
        engine = make_engine()
        ingestor = StreamIngestor(engine).start()
        ingestor.close()
        with pytest.raises(RuntimeError):
            ingestor.submit(blocks(1)[0])

    def test_close_without_wait_drops_queued_blocks(self):
        engine = make_engine()
        gate = threading.Event()
        original = engine.run_stream_block

        def slow_run(batch, bulk=True, type_signature=None):
            gate.wait(timeout=5)
            original(batch, bulk=bulk, type_signature=type_signature)

        engine.run_stream_block = slow_run
        ingestor = StreamIngestor(engine, max_pending=8, max_batch_blocks=1).start()
        for block in blocks(4):
            ingestor.submit(block)
        gate.set()
        ingestor.close(wait=False)
        assert ingestor.stats.processed_blocks + ingestor.stats.dropped_blocks == 4


class TestErrorPropagation:
    def test_consumer_error_reaches_the_producer(self):
        engine = make_engine()

        def boom(batch, bulk=True, type_signature=None):
            raise ValueError("broken block")

        engine.run_stream_block = boom
        ingestor = StreamIngestor(engine).start()
        ingestor.submit(blocks(1)[0])
        with pytest.raises(RuntimeError, match="stream ingestion failed"):
            ingestor.flush()

    def test_blocks_queued_behind_a_failure_are_dropped(self):
        engine = make_engine()
        gate = threading.Event()

        def boom(batch, bulk=True, type_signature=None):
            gate.wait(timeout=5)
            raise ValueError("broken block")

        engine.run_stream_block = boom
        ingestor = StreamIngestor(engine, max_pending=8, max_batch_blocks=1).start()
        stream = blocks(3)
        for block in stream:
            ingestor.submit(block)
        gate.set()
        with pytest.raises(RuntimeError, match="stream ingestion failed"):
            ingestor.flush()
        assert ingestor.stats.dropped_blocks == 3
        assert ingestor.stats.processed_blocks == 0
        # The failure latches: further submissions are refused...
        with pytest.raises(RuntimeError, match="failed"):
            ingestor.submit(stream[0])
        # ...but the (already-delivered) error does not resurface on close.
        ingestor.close()


class TestCoalescing:
    """The PR-5 micro-batching consumer: drain up to max_batch_blocks per wake-up."""

    def run_pipelined(self, stream, max_batch_blocks, gate_first=True):
        """Drive a gated ingestor so the queue fills before the consumer runs."""
        engine = make_engine()
        add_rule(engine, "stock_watch", "create(stock)")
        gate = threading.Event()
        original_single = engine.run_stream_block
        original_multi = engine.run_stream_blocks

        def gated_single(batch, bulk=True, type_signature=None):
            gate.wait(timeout=5)
            original_single(batch, bulk=bulk, type_signature=type_signature)

        def gated_multi(batches, bulk=True, type_signatures=None):
            gate.wait(timeout=5)
            original_multi(batches, bulk=bulk, type_signatures=type_signatures)

        if gate_first:
            engine.run_stream_block = gated_single
            engine.run_stream_blocks = gated_multi
        else:
            gate.set()
        ingestor = StreamIngestor(
            engine, max_pending=len(stream) + 1, max_batch_blocks=max_batch_blocks
        ).start()
        for one_block in stream:
            ingestor.submit(one_block)
        gate.set()
        ingestor.close()
        return engine, ingestor

    def test_consumer_coalesces_a_backlog(self):
        stream = blocks(9)
        engine, ingestor = self.run_pipelined(stream, max_batch_blocks=4)
        stats = ingestor.stats
        assert stats.processed_blocks == 9
        assert stats.dropped_blocks == 0
        # The backlog was drained in micro-batches: strictly fewer wake-ups
        # than blocks, never more than the bound per trip.
        assert stats.coalesced_trips < stats.processed_blocks
        assert 2 <= stats.max_blocks_per_trip <= 4
        # Block boundaries survive coalescing: every submitted block was
        # flushed on its own (plus one flush per consideration the
        # processing loop ran), and the log kept submission order.
        assert engine.event_handler.blocks_processed >= len(stream)
        assert len(engine.event_base) == sum(len(b) for b in stream)
        stamps = [occurrence.timestamp for occurrence in engine.event_base.occurrences]
        assert stamps == sorted(stamps)

    def test_batch_bound_one_is_byte_identical_to_per_block(self):
        stream = blocks(12)
        direct = make_engine()
        add_rule(direct, "stock_watch", "create(stock)")
        for one_block in stream:
            direct.run_stream_block(one_block)

        engine, ingestor = self.run_pipelined(stream, max_batch_blocks=1)
        assert ingestor.stats.max_blocks_per_trip == 1
        assert ingestor.stats.coalesced_trips == len(stream)
        assert (
            direct.rule_table.get("stock_watch").times_triggered
            == engine.rule_table.get("stock_watch").times_triggered
        )
        assert [record.rule_name for record in direct.considerations] == [
            record.rule_name for record in engine.considerations
        ]
        assert (
            direct.trigger_support.stats.as_dict()
            == engine.trigger_support.stats.as_dict()
        )

    def test_flush_waits_for_the_whole_backlog(self):
        engine = make_engine()
        add_rule(engine, "stock_watch", "create(stock)")
        with StreamIngestor(engine, max_pending=16, max_batch_blocks=4) as ingestor:
            stream = blocks(10)
            for one_block in stream:
                ingestor.submit(one_block)
            ingestor.flush()
            # flush() returns only once every submitted block is processed,
            # whatever trip boundaries the consumer chose.
            assert ingestor.stats.processed_blocks == 10
            assert len(engine.event_base) == sum(len(b) for b in stream)

    def test_failure_mid_batch_latches_and_drops_later_blocks(self):
        engine = make_engine()
        gate = threading.Event()
        calls: list[int] = []

        def boom_multi(batches, bulk=True, type_signatures=None):
            gate.wait(timeout=5)
            calls.append(len(batches))
            raise ValueError("broken trip")

        def boom_single(batch, bulk=True, type_signature=None):
            boom_multi([batch])

        engine.run_stream_blocks = boom_multi
        engine.run_stream_block = boom_single
        ingestor = StreamIngestor(engine, max_pending=16, max_batch_blocks=4).start()
        stream = blocks(10)
        for one_block in stream:
            ingestor.submit(one_block)
        gate.set()
        # The error is delivered exactly once...
        with pytest.raises(RuntimeError, match="stream ingestion failed"):
            ingestor.flush()
        # ...the engine was reached for the failing trip only, and every
        # other queued block was dropped, not applied.
        assert len(calls) == 1
        assert ingestor.stats.processed_blocks == 0
        assert ingestor.stats.dropped_blocks == 10
        with pytest.raises(RuntimeError, match="failed"):
            ingestor.submit(stream[0])
        ingestor.close()  # already-delivered error does not resurface

    def test_max_batch_blocks_validation_and_ambient_default(self, monkeypatch):
        from repro.cluster.streaming import default_batch_blocks

        engine = make_engine()
        with pytest.raises(ValueError, match="max_batch_blocks"):
            StreamIngestor(engine, max_batch_blocks=0)
        monkeypatch.setenv("CHIMERA_BATCH_BLOCKS", "6")
        assert default_batch_blocks() == 6
        assert StreamIngestor(engine).max_batch_blocks == 6
        monkeypatch.setenv("CHIMERA_BATCH_BLOCKS", "not-a-number")
        assert default_batch_blocks() == 1
        monkeypatch.delenv("CHIMERA_BATCH_BLOCKS")
        assert default_batch_blocks() == 1

    def test_database_stream_ingestor_threads_the_knob(self):
        from repro.oodb.database import ChimeraDatabase

        db = ChimeraDatabase(batch_blocks=3)
        try:
            ingestor = db.stream_ingestor()
            assert ingestor.max_batch_blocks == 3
            assert ingestor.engine is db.engine
            assert db.stream_ingestor(batch_blocks=5).max_batch_blocks == 5
        finally:
            db.close()


class TestSignaturePassThrough:
    def test_precomputed_signature_reaches_the_planner(self):
        engine = make_engine(shards=2)
        add_rule(engine, "stock_watch", "create(stock)")
        block = blocks(1)[0]
        signature = frozenset(occ.event_type for occ in block)
        engine.run_stream_block(block, type_signature=signature)
        assert engine.rule_table.get("stock_watch").times_triggered == 1

    def test_stale_pending_occurrences_force_rederivation(self):
        engine = make_engine()
        add_rule(engine, "order_watch", "create(order)")
        # Leave an unflushed occurrence pending, then stream a batch with a
        # signature that does not cover it: the handler must re-derive.
        engine.clock.tick()
        engine.event_base.record(ORDER, "o9", 1)
        block = [EventOccurrence(eid=99, event_type=STOCK, oid="o1", timestamp=1)]
        engine.run_stream_block(block, type_signature=frozenset({STOCK}))
        assert engine.rule_table.get("order_watch").times_triggered == 1
