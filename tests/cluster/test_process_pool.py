"""Failure semantics of the process shard pool.

The happy path is pinned by the cross-mode differential harness
(``test_mode_equivalence.py``); these tests pin what happens when things go
wrong out of process:

* a worker-side evaluation error surfaces in the coordinator as the
  *original* exception type (behavioral parity with the serial mode's error
  path), with the worker traceback chained as a ``ShardWorkerError`` cause,
  and the pool survives — every other worker's reply is drained so no stale
  reply can pair with a later request;
* a dead worker poisons the pool: the failing call raises
  ``ShardWorkerError`` and every subsequent call fails loudly instead of
  silently desyncing;
* the shared-memory transport inherits the same contracts: a worker death
  with the row ring attached leaks no segment past ``close()``, and a
  corrupted ring header surfaces as a worker-side ``SnapshotError`` that
  poisons the pool instead of rebuilding a wrong mirror.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.sharding import ShardedRuleTable
from repro.core.parser import parse_expression
from repro.errors import ShardWorkerError, SnapshotError
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.event_handler import EventHandler
from repro.rules.rule import Rule


CREATE_ALPHA = EventType(Operation.CREATE, "alpha")


def build_support(rule_count: int = 4, transport: str | None = None):
    table = ShardedRuleTable(2)
    event_base = EventBase()
    for index in range(rule_count):
        table.add(
            Rule(
                name=f"w{index}",
                events=parse_expression("create(alpha)"),
                condition=TRUE_CONDITION,
                action=NO_ACTION,
            )
        ).reset(0)
    handler = EventHandler(event_base)
    support = ShardCoordinator(
        table, event_base, shard_mode="processes", transport=transport
    )
    return table, event_base, handler, support


def feed_block(event_base, handler, support, stamp: int):
    event_base.record(CREATE_ALPHA, oid="alpha#1", timestamp=stamp)
    batch = handler.flush_block()
    newly = support.check_after_block(
        batch, stamp, 0, type_signature=batch.type_signature
    )
    for state in newly:
        state.mark_considered(stamp, executed=False)
    return newly


def test_worker_error_preserves_exception_type_and_pool_survives():
    table, event_base, handler, support = build_support()
    try:
        assert feed_block(event_base, handler, support, 1)  # pool spawned, defs shipped
        pool = support.process_pool
        assert pool is not None

        # Sabotage one rule's shipping bookkeeping: the coordinator believes
        # the definition was shipped, so the worker hits a KeyError when the
        # work item arrives.
        state = table.get("w0")
        broken = Rule(
            name="fresh",
            events=parse_expression("create(alpha)"),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
        )
        fresh = table.add(broken)
        fresh.reset(1)
        home = support._worker_of(fresh, pool.num_workers)
        pool._workers[home].shipped_defs["fresh"] = fresh.definition_order

        event_base.record(CREATE_ALPHA, oid="alpha#2", timestamp=2)
        batch = handler.flush_block()
        with pytest.raises(KeyError) as excinfo:
            support.check_after_block(batch, 2, 0, type_signature=batch.type_signature)
        # The worker traceback rides along as the chained cause.
        assert isinstance(excinfo.value.__cause__, ShardWorkerError)
        assert "fresh" in str(excinfo.value.__cause__)

        # A clean error reply does not poison the pool: fix the bookkeeping
        # and the next block works (the reply streams stayed aligned).
        del pool._workers[home].shipped_defs["fresh"]
        for st in table.states():
            if st.triggered:
                st.mark_considered(2, executed=False)
        assert feed_block(event_base, handler, support, 3)
        assert state.times_triggered >= 2
    finally:
        support.close()


def test_dead_worker_poisons_the_pool():
    table, event_base, handler, support = build_support()
    try:
        assert feed_block(event_base, handler, support, 1)
        pool = support.process_pool
        assert pool is not None
        for handle in pool._workers:
            handle.process.kill()
            handle.process.join(timeout=2.0)

        event_base.record(CREATE_ALPHA, oid="alpha#2", timestamp=2)
        batch = handler.flush_block()
        with pytest.raises(ShardWorkerError):
            support.check_after_block(batch, 2, 0, type_signature=batch.type_signature)

        # Poisoned: subsequent calls fail loudly instead of desyncing.
        event_base.record(CREATE_ALPHA, oid="alpha#3", timestamp=3)
        batch = handler.flush_block()
        with pytest.raises(ShardWorkerError, match="broken|gone|died"):
            support.check_after_block(batch, 3, 0, type_signature=batch.type_signature)
    finally:
        support.close()


def test_dead_worker_with_shm_ring_leaks_no_segment():
    """Worker death mid-trip must not leak the shared-memory ring."""
    table, event_base, handler, support = build_support(transport="shm")
    ring_name = None
    try:
        assert feed_block(event_base, handler, support, 1)
        pool = support.process_pool
        assert pool is not None
        ring = pool._ring
        assert ring is not None  # the shm transport built its ring lazily
        ring_name = ring.name
        # The segment is live and attachable while the pool runs.
        probe = shared_memory.SharedMemory(name=ring_name)
        probe.close()

        for handle in pool._workers:
            handle.process.kill()
            handle.process.join(timeout=2.0)
        event_base.record(CREATE_ALPHA, oid="alpha#2", timestamp=2)
        batch = handler.flush_block()
        with pytest.raises(ShardWorkerError):
            support.check_after_block(batch, 2, 0, type_signature=batch.type_signature)
    finally:
        support.close()
    # close() unlinked the ring even though the pool died broken: attaching
    # by name must fail — nothing stays behind in /dev/shm.
    assert ring_name is not None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ring_name)


def test_corrupted_ring_header_poisons_the_pool_loudly():
    """A clobbered ring header is codec divergence, not a wrong mirror."""
    table, event_base, handler, support = build_support(transport="shm")
    try:
        assert feed_block(event_base, handler, support, 1)
        pool = support.process_pool
        assert pool is not None and pool._ring is not None
        # Clobber the magic word: every subsequent worker-side read must
        # refuse to decode.
        pool._ring.shm.buf[0:4] = b"\x00\x00\x00\x00"

        event_base.record(CREATE_ALPHA, oid="alpha#2", timestamp=2)
        batch = handler.flush_block()
        with pytest.raises(SnapshotError, match="ring header is corrupt") as excinfo:
            support.check_after_block(batch, 2, 0, type_signature=batch.type_signature)
        # The worker traceback rides along, exactly like other worker errors.
        assert isinstance(excinfo.value.__cause__, ShardWorkerError)

        # The failing worker never applied its delta, so its mirror diverged
        # from the coordinator's bookkeeping: the pool must be poisoned.
        event_base.record(CREATE_ALPHA, oid="alpha#3", timestamp=3)
        batch = handler.flush_block()
        with pytest.raises(ShardWorkerError, match="broken"):
            support.check_after_block(batch, 3, 0, type_signature=batch.type_signature)
    finally:
        support.close()


def test_rule_free_database_never_spawns_workers():
    table = ShardedRuleTable(4)
    event_base = EventBase()
    handler = EventHandler(event_base)
    support = ShardCoordinator(table, event_base, shard_mode="processes")
    try:
        for stamp in (1, 2, 3):
            event_base.record(CREATE_ALPHA, oid="alpha#1", timestamp=stamp)
            batch = handler.flush_block()
            support.check_after_block(
                batch, stamp, 0, type_signature=batch.type_signature
            )
        assert support.recheck_all(3, 0) == []
        assert support.process_pool is None  # never forked a single process
    finally:
        support.close()
