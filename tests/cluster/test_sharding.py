"""Unit tests for the sharded rule table and the shard coordinator plumbing."""

from __future__ import annotations

import pytest

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.sharding import ShardedRuleTable, home_shard, shard_of_bucket
from repro.core.parser import parse_expression
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventBase
from repro.oodb.schema import Schema
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.rule import Rule


def make_rule(name: str, events: str, priority: int = 0) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(events),
        condition=TRUE_CONDITION,
        action=NO_ACTION,
        priority=priority,
    )


def occurrence(eid: int, event_type: EventType, stamp: int = 1) -> EventOccurrence:
    return EventOccurrence(
        eid=eid,
        event_type=event_type,
        oid=f"{event_type.class_name}#1",
        timestamp=stamp,
    )


class TestShardAssignment:
    def test_bucket_hash_is_stable_and_in_range(self):
        for shards in (1, 2, 4, 8):
            for class_name in ("stock", "order", "show"):
                first = shard_of_bucket(Operation.CREATE, class_name, shards)
                assert first == shard_of_bucket(Operation.CREATE, class_name, shards)
                assert 0 <= first < shards

    def test_same_class_exact_and_class_watch_share_a_shard(self):
        # Every index structure one signature type touches is keyed by types
        # of one (operation, class) pair — the invariant routing relies on.
        table = ShardedRuleTable(8)
        table.add(make_rule("attr", "modify(stock.quantity)"))
        table.add(make_rule("cls", "modify(stock)"))
        assert table.shards_of_rule("attr") == table.shards_of_rule("cls")

    def test_multi_bucket_rule_is_registered_on_each_owner(self):
        table = ShardedRuleTable(8)
        table.add(make_rule("multi", "create(stock) , create(order)"))
        expected = {
            shard_of_bucket(Operation.CREATE, "stock", 8),
            shard_of_bucket(Operation.CREATE, "order", 8),
        }
        assert set(table.shards_of_rule("multi")) == expected

    def test_pure_negation_has_no_subscription_shards_but_a_home(self):
        table = ShardedRuleTable(4)
        table.add(make_rule("neg", "-create(stock)"))
        assert table.shards_of_rule("neg") == ()
        assert table.home_shard_of("neg") == home_shard("neg", 4)

    def test_remove_unregisters_from_every_shard(self):
        table = ShardedRuleTable(8)
        table.add(make_rule("multi", "create(stock) , create(order)"))
        table.remove("multi")
        assert table.shards_of_rule("multi") == ()
        assert sum(table.shard_population()) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedRuleTable(0)

    def test_coordinator_requires_sharded_table(self):
        from repro.rules.rule_table import RuleTable

        with pytest.raises(TypeError):
            ShardCoordinator(RuleTable(), EventBase())


class TestShardPlanCache:
    def setup_method(self):
        self.table = ShardedRuleTable(4)
        self.event_base = EventBase()
        self.coordinator = ShardCoordinator(self.table, self.event_base)
        self.stock = EventType(Operation.CREATE, "stock")
        self.order = EventType(Operation.CREATE, "order")

    def plan_names(self, *types: EventType) -> set[str]:
        plan = self.coordinator.plan_sharded(frozenset(types))
        return {state.rule.name for _, states in plan.per_shard for state in states}

    def test_repeated_signature_hits_the_cache(self):
        self.table.add(make_rule("watcher", "create(stock)"))
        self.table.get("watcher").had_nonempty_window = True
        assert self.plan_names(self.stock) == {"watcher"}
        misses = self.table.plan_cache_misses
        assert self.plan_names(self.stock) == {"watcher"}
        assert self.table.plan_cache_misses == misses
        assert self.table.plan_cache_hits > 0

    def test_rule_add_invalidates_cached_plans(self):
        self.table.add(make_rule("first", "create(stock)"))
        self.table.get("first").had_nonempty_window = True
        assert self.plan_names(self.stock) == {"first"}
        self.table.add(make_rule("second", "create(stock)"))
        self.table.get("second").had_nonempty_window = True
        assert self.plan_names(self.stock) == {"first", "second"}

    def test_rule_removal_invalidates_cached_plans(self):
        self.table.add(make_rule("first", "create(stock)"))
        self.table.add(make_rule("second", "create(stock)"))
        for name in ("first", "second"):
            self.table.get(name).had_nonempty_window = True
        assert self.plan_names(self.stock) == {"first", "second"}
        self.table.remove("second")
        assert self.plan_names(self.stock) == {"first"}

    def test_disable_is_filtered_without_invalidation(self):
        self.table.add(make_rule("watcher", "create(stock)"))
        self.table.get("watcher").had_nonempty_window = True
        assert self.plan_names(self.stock) == {"watcher"}
        misses = self.table.plan_cache_misses
        self.table.disable("watcher")
        assert self.plan_names(self.stock) == set()
        self.table.enable("watcher")
        self.table.get("watcher").had_nonempty_window = True
        assert self.plan_names(self.stock) == {"watcher"}
        # Enable/disable changes no subscription shape: the cache survived.
        assert self.table.plan_cache_misses == misses

    def test_schema_growth_invalidates_cached_plans(self):
        schema = Schema()
        schema.define("order")
        self.table.bind_schema(schema)
        self.table.add(make_rule("watcher", "create(order)"))
        self.table.get("watcher").had_nonempty_window = True
        special = EventType(Operation.CREATE, "special")
        assert self.plan_names(special) == set()
        schema.define("special", superclass="order")
        assert self.plan_names(special) == {"watcher"}

    def test_multi_shard_rule_checked_once_per_block(self):
        self.table.add(make_rule("multi", "create(stock) , create(order)"))
        self.table.get("multi").had_nonempty_window = True
        plan = self.coordinator.plan_sharded(frozenset({self.stock, self.order}))
        names = [state.rule.name for _, states in plan.per_shard for state in states]
        assert names.count("multi") == 1
        assert plan.routed == 1


class TestCoordinatorCheck:
    def test_fanout_checks_only_owning_shards(self):
        table = ShardedRuleTable(4)
        event_base = EventBase()
        coordinator = ShardCoordinator(table, event_base)
        table.add(make_rule("stock_watch", "create(stock)"))
        table.add(make_rule("order_watch", "create(order)"))
        stock = EventType(Operation.CREATE, "stock")
        event_base.append(occurrence(1, stock, stamp=1))
        newly = coordinator.check_after_block([occurrence(1, stock, stamp=1)], 1, 0)
        assert [state.rule.name for state in newly] == ["stock_watch"]
        assert coordinator.cluster_stats.blocks_fanned_out == 1

    def test_parallel_pool_lifecycle(self):
        table = ShardedRuleTable(4)
        event_base = EventBase()
        with ShardCoordinator(table, event_base, parallel=True) as coordinator:
            for index, class_name in enumerate(("stock", "order", "show")):
                table.add(make_rule(f"w{index}", f"create({class_name})"))
            block = [
                occurrence(eid, EventType(Operation.CREATE, cls), stamp=1)
                for eid, cls in enumerate(("stock", "order", "show"), start=1)
            ]
            for item in block:
                event_base.append(item)
            newly = coordinator.check_after_block(block, 1, 0)
            assert sorted(state.rule.name for state in newly) == ["w0", "w1", "w2"]
        coordinator.close()  # idempotent
