"""Test package."""
