"""Test package."""
