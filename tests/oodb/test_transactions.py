"""Tests for transactions, transaction lines and commit/rollback."""

import pytest

from repro.errors import TransactionError
from repro.oodb.transactions import TransactionStatus


class TestLifecycle:
    def test_commit_on_context_exit(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5})
        assert tx.status is TransactionStatus.COMMITTED
        assert stock_db.count("stock") == 1

    def test_rollback_on_exception(self, stock_db):
        with pytest.raises(RuntimeError):
            with stock_db.transaction() as tx:
                tx.create("stock", {"quantity": 5})
                raise RuntimeError("boom")
        assert tx.status is TransactionStatus.ROLLED_BACK
        assert stock_db.count("stock") == 0

    def test_explicit_rollback(self, stock_db):
        tx = stock_db.transaction()
        tx.create("stock", {"quantity": 5})
        tx.rollback()
        assert stock_db.count("stock") == 0

    def test_operations_after_commit_rejected(self, stock_db):
        tx = stock_db.transaction()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.create("stock", {})

    def test_double_commit_rejected(self, stock_db):
        tx = stock_db.transaction()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()

    def test_only_one_active_transaction(self, stock_db):
        tx = stock_db.transaction()
        with pytest.raises(TransactionError):
            stock_db.transaction()
        tx.commit()
        stock_db.transaction().commit()

    def test_new_transaction_after_commit_starts_fresh_event_base(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5})
        first_eb = stock_db.event_base
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 6})
        assert stock_db.event_base is not first_eb


class TestOperations:
    def test_each_operation_is_a_line(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5})
            tx.create("show", {"quantity": 2})
            assert tx.lines_executed == 2

    def test_modify_and_delete(self, stock_db):
        with stock_db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 5})
            tx.modify(obj.oid, "quantity", 8)
            assert stock_db.get(obj.oid).get("quantity") == 8
            tx.delete(obj.oid)
        assert stock_db.count("stock") == 0

    def test_specialize_and_generalize(self, stock_db):
        with stock_db.transaction() as tx:
            obj = tx.create("order", {"customer": "c", "amount": 1})
            tx.specialize(obj.oid, "notFilledOrder")
            assert stock_db.get(obj.oid).class_name == "notFilledOrder"
            tx.generalize(obj.oid, "order")
            assert stock_db.get(obj.oid).class_name == "order"

    def test_select_inside_transaction(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5})
            rows = tx.select("stock")
            assert len(rows) == 1

    def test_line_groups_operations_into_one_block(self, stock_db):
        with stock_db.transaction() as tx:
            def block(ops):
                first = ops.create("stock", {"quantity": 1})
                ops.modify(first.oid, "quantity", 2)
                return first

            created = tx.line(block)
            assert tx.lines_executed == 1
        assert stock_db.get(created.oid).get("quantity") == 2

    def test_rollback_undoes_rule_free_changes_to_existing_objects(self, stock_db):
        with stock_db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 5})
        tx2 = stock_db.transaction()
        tx2.modify(obj.oid, "quantity", 99)
        tx2.rollback()
        assert stock_db.get(obj.oid).get("quantity") == 5

    def test_run_transaction_helper(self, stock_db):
        stock_db.run_transaction(
            lambda ops: ops.create("stock", {"quantity": 5}),
            lambda ops: ops.create("show", {"quantity": 1}),
        )
        assert stock_db.count() == 2
