"""Tests for data-manipulation operations and the events they emit."""

import pytest

from repro.errors import SchemaError
from repro.events.clock import TransactionClock
from repro.events.event import Operation
from repro.events.event_base import EventBase
from repro.oodb.objects import ObjectStore
from repro.oodb.operations import OperationExecutor
from repro.oodb.schema import Schema


@pytest.fixture
def executor() -> OperationExecutor:
    schema = Schema()
    schema.define("stock", {"quantity": int, "maxquantity": int})
    schema.define("order", {"amount": int})
    schema.define("notFilledOrder", {"amount": int, "reason": str}, superclass="order")
    return OperationExecutor(schema, ObjectStore(), EventBase(), TransactionClock())


class TestCreate:
    def test_creates_object_and_event(self, executor):
        result = executor.create("stock", {"quantity": 5})
        assert result.object.get("quantity") == 5
        assert len(result.occurrences) == 1
        occurrence = result.occurrences[0]
        assert occurrence.event_type.operation is Operation.CREATE
        assert occurrence.oid == result.object.oid
        assert occurrence.timestamp == result.object.created_at

    def test_event_timestamps_strictly_increase(self, executor):
        first = executor.create("stock")
        second = executor.create("stock")
        assert second.occurrences[0].timestamp > first.occurrences[0].timestamp

    def test_unknown_attribute_rejected(self, executor):
        with pytest.raises(Exception):
            executor.create("stock", {"colour": "red"})

    def test_payload_carries_initial_values(self, executor):
        result = executor.create("stock", {"quantity": 7})
        assert result.occurrences[0].payload["values"]["quantity"] == 7


class TestModify:
    def test_modify_updates_value_and_emits_attribute_event(self, executor):
        obj = executor.create("stock", {"quantity": 5}).object
        result = executor.modify(obj.oid, "quantity", 9)
        assert executor.store.get(obj.oid).get("quantity") == 9
        occurrence = result.occurrences[0]
        assert occurrence.event_type.operation is Operation.MODIFY
        assert occurrence.event_type.attribute == "quantity"
        assert occurrence.payload == {"old_value": 5, "new_value": 9}

    def test_modify_validates_attribute(self, executor):
        obj = executor.create("stock").object
        with pytest.raises(Exception):
            executor.modify(obj.oid, "colour", "red")

    def test_modify_validates_type(self, executor):
        obj = executor.create("stock").object
        with pytest.raises(SchemaError):
            executor.modify(obj.oid, "quantity", "lots")

    def test_modify_many(self, executor):
        first = executor.create("stock", {"quantity": 1}).object
        second = executor.create("stock", {"quantity": 2}).object
        result = executor.modify_many(
            [first.oid, second.oid], "quantity", lambda obj: obj.get("quantity") * 10
        )
        assert executor.store.get(first.oid).get("quantity") == 10
        assert executor.store.get(second.oid).get("quantity") == 20
        assert len(result.occurrences) == 2


class TestDelete:
    def test_delete_emits_event_and_removes_object(self, executor):
        obj = executor.create("stock", {"quantity": 3}).object
        result = executor.delete(obj.oid)
        assert not executor.store.exists(obj.oid)
        assert result.occurrences[0].event_type.operation is Operation.DELETE
        assert result.occurrences[0].payload["values"]["quantity"] == 3


class TestHierarchyOperations:
    def test_specialize(self, executor):
        obj = executor.create("order", {"amount": 2}).object
        result = executor.specialize(obj.oid, "notFilledOrder")
        assert executor.store.get(obj.oid).class_name == "notFilledOrder"
        assert result.occurrences[0].event_type.operation is Operation.SPECIALIZE
        assert result.occurrences[0].event_type.class_name == "notFilledOrder"

    def test_specialize_requires_subclass(self, executor):
        obj = executor.create("order").object
        with pytest.raises(SchemaError):
            executor.specialize(obj.oid, "stock")

    def test_generalize(self, executor):
        obj = executor.create("notFilledOrder", {"amount": 2}).object
        result = executor.generalize(obj.oid, "order")
        assert executor.store.get(obj.oid).class_name == "order"
        assert result.occurrences[0].event_type.operation is Operation.GENERALIZE

    def test_generalize_requires_ancestor(self, executor):
        obj = executor.create("order").object
        with pytest.raises(SchemaError):
            executor.generalize(obj.oid, "stock")


class TestSelect:
    def test_select_returns_matching_objects(self, executor):
        executor.create("stock", {"quantity": 5})
        executor.create("stock", {"quantity": 50})
        result = executor.select("stock", lambda obj: obj.get("quantity") > 10)
        assert len(result.objects) == 1

    def test_select_includes_subclasses(self, executor):
        executor.create("order", {"amount": 1})
        executor.create("notFilledOrder", {"amount": 2})
        result = executor.select("order")
        assert len(result.objects) == 2

    def test_select_emits_one_event_per_returned_object(self, executor):
        executor.create("stock", {"quantity": 5})
        executor.create("stock", {"quantity": 6})
        result = executor.select("stock")
        assert len(result.occurrences) == 2
        assert all(
            occurrence.event_type.operation is Operation.SELECT
            for occurrence in result.occurrences
        )

    def test_select_events_can_be_disabled(self):
        schema = Schema()
        schema.define("stock", {"quantity": int})
        executor = OperationExecutor(
            schema,
            ObjectStore(),
            EventBase(),
            TransactionClock(),
            emit_select_events=False,
        )
        executor.create("stock")
        assert executor.select("stock").occurrences == ()


class TestOperationResult:
    def test_single_object_accessor(self, executor):
        result = executor.create("stock")
        assert result.object is result.objects[0]
        assert result.oids == (result.object.oid,)

    def test_single_object_accessor_rejects_multiple(self, executor):
        executor.create("stock")
        executor.create("stock")
        result = executor.select("stock")
        with pytest.raises(Exception):
            _ = result.object
