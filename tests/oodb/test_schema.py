"""Tests for class schemas and inheritance."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownClassError
from repro.oodb.schema import AttributeDefinition, Schema


@pytest.fixture
def schema() -> Schema:
    s = Schema()
    s.define("order", {"customer": str, "amount": int})
    s.define("notFilledOrder", {"reason": str}, superclass="order")
    s.define("urgentOrder", {"deadline": int}, superclass="notFilledOrder")
    s.define("stock", {"quantity": int, "maxquantity": int})
    return s


class TestDefinition:
    def test_define_and_contains(self, schema):
        assert "order" in schema
        assert "shipment" not in schema

    def test_redefinition_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define("order")

    def test_invalid_name_rejected(self):
        s = Schema()
        with pytest.raises(SchemaError):
            s.define("not a name")
        with pytest.raises(SchemaError):
            s.define("")

    def test_unknown_superclass_rejected(self):
        s = Schema()
        with pytest.raises(UnknownClassError):
            s.define("child", superclass="ghost")

    def test_class_names_in_definition_order(self, schema):
        assert schema.class_names()[:2] == ["order", "notFilledOrder"]

    def test_attribute_declaration_shapes(self):
        s = Schema()
        s.define(
            "mixed",
            {
                "typed": int,
                "defined": AttributeDefinition("defined", str),
                "defaulted": 5,
            },
        )
        attributes = s.all_attributes("mixed")
        assert attributes["typed"].value_type is int
        assert attributes["defined"].value_type is str
        assert attributes["defaulted"].default == 5

    def test_attribute_list_declaration(self):
        s = Schema()
        s.define("loose", ["a", "b"])
        assert set(s.all_attributes("loose")) == {"a", "b"}

    def test_get_unknown_class(self, schema):
        with pytest.raises(UnknownClassError):
            schema.get("ghost")


class TestInheritance:
    def test_ancestors(self, schema):
        assert schema.ancestors("urgentOrder") == ["notFilledOrder", "order"]
        assert schema.ancestors("order") == []

    def test_descendants(self, schema):
        assert schema.descendants("order") == {"notFilledOrder", "urgentOrder"}
        assert schema.descendants("urgentOrder") == set()

    def test_is_subclass(self, schema):
        assert schema.is_subclass("urgentOrder", "order")
        assert schema.is_subclass("order", "order")
        assert not schema.is_subclass("order", "urgentOrder")
        assert not schema.is_subclass("stock", "order")

    def test_all_attributes_includes_inherited(self, schema):
        attributes = schema.all_attributes("urgentOrder")
        assert set(attributes) == {"customer", "amount", "reason", "deadline"}

    def test_subclass_overrides_attribute(self):
        s = Schema()
        s.define("base", {"value": int})
        s.define("derived", {"value": str}, superclass="base")
        assert s.all_attributes("derived")["value"].value_type is str


class TestValidation:
    def test_validate_values_fills_defaults(self, schema):
        values = schema.validate_values("stock", {"quantity": 5})
        assert values["quantity"] == 5
        assert values["maxquantity"] is None

    def test_validate_values_rejects_unknown_attribute(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.validate_values("stock", {"colour": "red"})

    def test_validate_values_rejects_wrong_type(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_values("stock", {"quantity": "many"})

    def test_validate_values_accepts_none(self, schema):
        assert schema.validate_values("stock", {"quantity": None})["quantity"] is None

    def test_int_accepted_for_float_attributes(self):
        s = Schema()
        s.define("measure", {"reading": float})
        assert s.validate_values("measure", {"reading": 3})["reading"] == 3

    def test_validate_attribute(self, schema):
        assert schema.validate_attribute("urgentOrder", "customer").name == "customer"
        with pytest.raises(UnknownAttributeError):
            schema.validate_attribute("stock", "customer")

    def test_attribute_accepts(self):
        definition = AttributeDefinition("flag", bool)
        assert definition.accepts(True)
        assert definition.accepts(None)
        assert not definition.accepts("yes")

    def test_untyped_attribute_accepts_anything(self):
        definition = AttributeDefinition("anything")
        assert definition.accepts(42)
        assert definition.accepts("text")
