"""Tests for OIDs, objects and the object store."""

import pytest

from repro.errors import UnknownObjectError
from repro.oodb.objects import OID, ChimeraObject, ObjectStore


class TestOID:
    def test_str(self):
        assert str(OID("stock", 3)) == "stock#3"

    def test_ordering_and_equality(self):
        assert OID("stock", 1) < OID("stock", 2)
        assert OID("stock", 1) == OID("stock", 1)
        assert len({OID("stock", 1), OID("stock", 1)}) == 1


class TestChimeraObject:
    def test_get_with_default(self):
        obj = ChimeraObject(OID("stock", 1), "stock", {"quantity": 4})
        assert obj.get("quantity") == 4
        assert obj.get("missing", 0) == 0
        assert obj["quantity"] == 4

    def test_snapshot_is_a_copy(self):
        obj = ChimeraObject(OID("stock", 1), "stock", {"quantity": 4})
        snapshot = obj.snapshot()
        snapshot["quantity"] = 99
        assert obj.get("quantity") == 4


class TestObjectStore:
    def test_new_oid_serials_are_per_class(self):
        store = ObjectStore()
        assert store.new_oid("stock").serial == 1
        assert store.new_oid("stock").serial == 2
        assert store.new_oid("show").serial == 1

    def test_insert_and_get(self):
        store = ObjectStore()
        obj = store.insert("stock", {"quantity": 5}, timestamp=1)
        assert store.get(obj.oid).get("quantity") == 5
        assert store.exists(obj.oid)

    def test_get_unknown_raises(self):
        store = ObjectStore()
        with pytest.raises(UnknownObjectError):
            store.get(OID("stock", 99))

    def test_set_attribute_returns_old_and_new(self):
        store = ObjectStore()
        obj = store.insert("stock", {"quantity": 5}, timestamp=1)
        old, new = store.set_attribute(obj.oid, "quantity", 9, timestamp=2)
        assert (old, new) == (5, 9)
        assert store.get(obj.oid).modified_at == 2

    def test_delete_removes_from_extent(self):
        store = ObjectStore()
        obj = store.insert("stock", {}, timestamp=1)
        store.delete(obj.oid, timestamp=2)
        assert not store.exists(obj.oid)
        assert store.count("stock") == 0
        with pytest.raises(UnknownObjectError):
            store.get(obj.oid)

    def test_deleted_object_still_reachable_when_requested(self):
        store = ObjectStore()
        obj = store.insert("stock", {}, timestamp=1)
        store.delete(obj.oid, timestamp=2)
        assert store.get(obj.oid, include_deleted=True).deleted

    def test_reclassify_moves_extents(self):
        store = ObjectStore()
        obj = store.insert("order", {}, timestamp=1)
        store.reclassify(obj.oid, "notFilledOrder", timestamp=2)
        assert store.count("order") == 0
        assert store.count("notFilledOrder") == 1
        assert store.get(obj.oid).class_name == "notFilledOrder"

    def test_objects_of_class_with_subclasses(self):
        store = ObjectStore()
        store.insert("order", {}, timestamp=1)
        store.insert("notFilledOrder", {}, timestamp=2)
        assert len(store.objects_of_class("order")) == 1
        assert len(store.objects_of_class("order", {"notFilledOrder"})) == 2

    def test_objects_of_class_is_sorted(self):
        store = ObjectStore()
        second = store.insert("stock", {}, timestamp=1)
        first = store.insert("show", {}, timestamp=1)
        ordered = store.objects_of_class("stock", {"show"})
        assert [obj.oid for obj in ordered] == sorted([second.oid, first.oid])

    def test_select_with_predicate(self):
        store = ObjectStore()
        store.insert("stock", {"quantity": 5}, timestamp=1)
        store.insert("stock", {"quantity": 50}, timestamp=2)
        low = store.select("stock", lambda obj: obj.get("quantity") < 10)
        assert len(low) == 1

    def test_count(self):
        store = ObjectStore()
        store.insert("stock", {}, timestamp=1)
        store.insert("show", {}, timestamp=1)
        assert store.count() == 2
        assert store.count("stock") == 1
        assert store.count("ghost") == 0

    def test_all_objects_excludes_deleted_by_default(self):
        store = ObjectStore()
        obj = store.insert("stock", {}, timestamp=1)
        store.delete(obj.oid, timestamp=2)
        assert store.all_objects() == []
        assert len(store.all_objects(include_deleted=True)) == 1

    def test_snapshot_and_restore(self):
        store = ObjectStore()
        obj = store.insert("stock", {"quantity": 5}, timestamp=1)
        snapshot = store.snapshot()
        store.set_attribute(obj.oid, "quantity", 99, timestamp=2)
        store.insert("stock", {}, timestamp=3)
        store.restore(snapshot)
        assert store.get(obj.oid).get("quantity") == 5
        assert store.count("stock") == 1

    def test_restore_preserves_serial_counters(self):
        store = ObjectStore()
        store.insert("stock", {}, timestamp=1)
        snapshot = store.snapshot()
        store.restore(snapshot)
        assert store.new_oid("stock").serial == 2
