"""Tests for the declarative query predicates."""

import pytest

from repro.errors import QueryError
from repro.oodb.objects import OID, ChimeraObject
from repro.oodb.query import Attr, Const, Predicate, always, never


def stock(quantity=None, minquantity=None) -> ChimeraObject:
    return ChimeraObject(
        OID("stock", 1), "stock", {"quantity": quantity, "minquantity": minquantity}
    )


class TestComparisons:
    def test_attribute_vs_constant(self):
        predicate = Attr("quantity") > 10
        assert predicate(stock(quantity=20))
        assert not predicate(stock(quantity=5))

    def test_attribute_vs_attribute(self):
        predicate = Attr("quantity") < Attr("minquantity")
        assert predicate(stock(quantity=3, minquantity=10))
        assert not predicate(stock(quantity=30, minquantity=10))

    def test_equality_and_inequality(self):
        assert (Attr("quantity") == 5)(stock(quantity=5))
        assert (Attr("quantity") != 5)(stock(quantity=6))
        assert (Attr("quantity") >= 5)(stock(quantity=5))
        assert (Attr("quantity") <= 5)(stock(quantity=5))

    def test_none_values_never_match(self):
        assert not (Attr("quantity") > 10)(stock())
        assert not (Attr("quantity") == Const(None).literal)(stock())

    def test_type_mismatch_raises_query_error(self):
        predicate = Attr("quantity") > "ten"
        with pytest.raises(QueryError):
            predicate(stock(quantity=5))


class TestCombinators:
    def test_and(self):
        predicate = (Attr("quantity") > 1) & (Attr("quantity") < 10)
        assert predicate(stock(quantity=5))
        assert not predicate(stock(quantity=50))

    def test_or(self):
        predicate = (Attr("quantity") < 1) | (Attr("quantity") > 10)
        assert predicate(stock(quantity=50))
        assert not predicate(stock(quantity=5))

    def test_not(self):
        predicate = ~(Attr("quantity") > 10)
        assert predicate(stock(quantity=5))

    def test_always_and_never(self):
        assert always(stock())
        assert not never(stock())

    def test_description_is_informative(self):
        predicate = (Attr("quantity") > 1) & ~never
        assert "quantity" in predicate.description

    def test_custom_predicate_from_callable(self):
        predicate = Predicate(lambda obj: obj.get("quantity") == 7, "is seven")
        assert predicate(stock(quantity=7))
        assert predicate.description == "is seven"
