"""Tests for the ChimeraDatabase facade."""

import pytest

from repro.errors import DuplicateRuleError, UnknownRuleError
from repro.oodb.database import ChimeraDatabase
from repro.oodb.query import Attr
from repro.workloads.stock import CHECK_STOCK_QTY_RULE


class TestSchemaAndRules:
    def test_define_class_and_create(self, stock_db):
        with stock_db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 5})
        assert stock_db.get(obj.oid).class_name == "stock"

    def test_define_rule_from_text(self, stock_db):
        rule = stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        assert rule.name == "checkStockQty"
        assert "checkStockQty" in stock_db.rule_table

    def test_duplicate_rule_rejected(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        with pytest.raises(DuplicateRuleError):
            stock_db.define_rule(CHECK_STOCK_QTY_RULE)

    def test_drop_rule(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        stock_db.drop_rule("checkStockQty")
        assert "checkStockQty" not in stock_db.rule_table
        with pytest.raises(UnknownRuleError):
            stock_db.drop_rule("checkStockQty")

    def test_define_rules_parses_multiple_definitions(self, stock_db):
        text = CHECK_STOCK_QTY_RULE + "\n" + CHECK_STOCK_QTY_RULE.replace(
            "checkStockQty", "checkStockQtyCopy"
        )
        rules = stock_db.define_rules(text)
        assert [rule.name for rule in rules] == ["checkStockQty", "checkStockQtyCopy"]

    def test_enable_disable_rule(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        stock_db.disable_rule("checkStockQty")
        with stock_db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 500, "maxquantity": 100})
        # The rule was disabled, so the quantity was not clamped.
        assert stock_db.get(obj.oid).get("quantity") == 500
        stock_db.enable_rule("checkStockQty")
        with stock_db.transaction() as tx:
            clamped = tx.create("stock", {"quantity": 500, "maxquantity": 100})
        assert stock_db.get(clamped.oid).get("quantity") == 100


class TestQueries:
    def test_select_with_predicate(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5, "maxquantity": 10})
            tx.create("stock", {"quantity": 50, "maxquantity": 100})
        assert len(stock_db.select("stock", Attr("quantity") > 10)) == 1

    def test_select_includes_subclasses(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("order", {"customer": "a", "amount": 1})
            tx.create("notFilledOrder", {"customer": "b", "amount": 2})
        assert len(stock_db.select("order")) == 2

    def test_count(self, stock_db):
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 1})
        assert stock_db.count() == 1
        assert stock_db.count("show") == 0


class TestIntrospection:
    def test_rule_statistics_and_considerations(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 500, "maxquantity": 100})
        stats = stock_db.rule_statistics()["checkStockQty"]
        assert stats["triggered"] >= 1
        assert stats["executed"] == 1
        assert any(
            record.rule_name == "checkStockQty" for record in stock_db.considerations
        )

    def test_trigger_statistics_shape(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        with stock_db.transaction() as tx:
            tx.create("stock", {"quantity": 5, "maxquantity": 100})
        stats = stock_db.trigger_statistics()
        assert {"blocks", "ts_computations", "ts_skipped_by_filter"} <= set(stats)

    def test_rule_state_access(self, stock_db):
        stock_db.define_rule(CHECK_STOCK_QTY_RULE)
        state = stock_db.rule_state("checkStockQty")
        assert state.rule.name == "checkStockQty"
        assert not state.triggered

    def test_static_optimization_can_be_disabled(self):
        db = ChimeraDatabase(use_static_optimization=False)
        db.define_class("stock", {"quantity": int, "maxquantity": int})
        db.define_rule(CHECK_STOCK_QTY_RULE)
        with db.transaction() as tx:
            tx.create("stock", {"quantity": 500, "maxquantity": 100})
        assert db.trigger_statistics()["ts_skipped_by_filter"] == 0
