"""Routed-vs-full-scan equivalence of the trigger planning pipeline.

The PR-2 subscription index must be *semantically invisible*: whatever the
block, the rules the :class:`TriggerPlanner` routes plus the pending
full-check rules must produce exactly the decisions of the exhaustive scan.
Random scenarios (in the seeded style of
``tests/core/test_incremental_triggering.py``) pin, block by block:

* identical newly-triggered rule sets,
* identical per-rule triggering/consideration counters,
* identical priority-order selections — and every selection also checked
  against a brute-force reference (sort the triggered states on
  ``(-priority, definition_order)``), pinning the lazy heaps against the
  seed's per-selection sort,

across three configurations: routed (index), full scan with per-rule ``V(E)``
filters (the PR-1 path) and full scan without the static optimization.  The
scenarios include overlapping class-level / attribute-specific patterns in
both the rules and the stream, pure negations (rules any occurrence can
unblock), priority ties, rule removals and disable/enable flips mid-run, and
empty blocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.parser import parse_expression
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventBase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.event_handler import EventHandler
from repro.rules.rule import ECCoupling, Rule
from repro.rules.rule_table import RuleTable
from repro.rules.trigger_support import TriggerSupport
from repro.workloads.generator import ExpressionGenerator

#: Universe with deliberate class/attribute overlap: class-level
#: ``modify(clsN)`` patterns and occurrences coexist with attribute-specific
#: ones, so the index's bidirectional matching is exercised in both
#: directions (class-level watch x attribute occurrence and vice versa).
def overlap_universe(classes: int = 3) -> list[EventType]:
    types: list[EventType] = []
    for index in range(classes):
        name = f"cls{index}"
        types.append(EventType(Operation.CREATE, name))
        types.append(EventType(Operation.DELETE, name))
        types.append(EventType(Operation.MODIFY, name))  # class-level modify
        types.append(EventType(Operation.MODIFY, name, "attr0"))
        types.append(EventType(Operation.MODIFY, name, "attr1"))
    return types


@dataclass(frozen=True)
class Scenario:
    """A reproducible script: rules, blocks and mid-run table mutations."""

    rules: tuple[Rule, ...]
    blocks: tuple[tuple[EventOccurrence, ...], ...]
    #: block index -> rule names removed just before that block
    removals: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: block index -> rules re-added (same name, fresh definition) just
    #: before that block — only applied if the name was already removed
    readds: dict[int, tuple[Rule, ...]] = field(default_factory=dict)
    #: block index -> rule names whose enabled flag is flipped before that block
    flips: dict[int, tuple[str, ...]] = field(default_factory=dict)


def build_scenario(seed: int, rule_count: int = 14, block_count: int = 24) -> Scenario:
    rng = random.Random(seed)
    universe = overlap_universe()
    expressions = ExpressionGenerator(
        event_types=universe, seed=seed * 31 + 1, instance_probability=0.3
    ).expressions(rule_count - 2, operators=rng.randint(1, 3))
    rules = [
        Rule(
            name=f"r{index}",
            events=expression,
            condition=TRUE_CONDITION,
            action=NO_ACTION,
            priority=rng.randint(0, 3),  # few levels -> plenty of ties
            coupling=rng.choice(list(ECCoupling)),
        )
        for index, expression in enumerate(expressions)
    ]
    # Always include a pure negation (any occurrence may unblock it) and an
    # explicit class-level watcher, whatever the generator drew.
    rules.append(
        Rule(
            name="pure_negation",
            events=parse_expression("-create(cls0)"),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
            priority=rng.randint(0, 3),
        )
    )
    rules.append(
        Rule(
            name="class_watcher",
            events=parse_expression("modify(cls1)"),
            condition=TRUE_CONDITION,
            action=NO_ACTION,
            priority=rng.randint(0, 3),
        )
    )

    blocks: list[tuple[EventOccurrence, ...]] = []
    eid, stamp = 0, 0
    for _ in range(block_count):
        if rng.random() < 0.15:
            blocks.append(())  # empty block
            continue
        block: list[EventOccurrence] = []
        stamp += 1
        for _ in range(rng.randint(1, 4)):
            event_type = rng.choice(universe)
            eid += 1
            block.append(
                EventOccurrence(
                    eid=eid,
                    event_type=event_type,
                    oid=f"{event_type.class_name}#{rng.randint(1, 3)}",
                    timestamp=stamp,
                )
            )
        blocks.append(tuple(block))

    names = [rule.name for rule in rules]
    removals: dict[int, tuple[str, ...]] = {}
    readds: dict[int, tuple[Rule, ...]] = {}
    removable = rng.sample(names, k=3)
    for name in removable:
        index = rng.randrange(4, block_count - 4)
        removals[index] = removals.get(index, ()) + (name,)
        if rng.random() < 0.7:
            # Re-add the same name later with a fresh definition/priority —
            # stale index or heap entries of the old rule must not leak.
            readd_index = rng.randrange(index + 2, block_count)
            replacement = Rule(
                name=name,
                events=rng.choice(expressions),
                condition=TRUE_CONDITION,
                action=NO_ACTION,
                priority=rng.randint(0, 3),
                coupling=rng.choice(list(ECCoupling)),
            )
            readds[readd_index] = readds.get(readd_index, ()) + (replacement,)
    flips: dict[int, tuple[str, ...]] = {}
    for name in rng.sample([n for n in names if n not in removable], k=3):
        index = rng.randrange(1, block_count)
        flips[index] = flips.get(index, ()) + (name,)
    return Scenario(
        rules=tuple(rules),
        blocks=tuple(blocks),
        removals=removals,
        readds=readds,
        flips=flips,
    )


def run_scenario(scenario: Scenario, use_index: bool, use_filter: bool = True) -> dict:
    """Execute a scenario under one planning configuration; return its trace."""
    event_base = EventBase()
    table = RuleTable()
    removed: set[str] = set()
    disabled: set[str] = set()
    for rule in scenario.rules:
        table.add(rule).reset(0)
    handler = EventHandler(event_base)
    support = TriggerSupport(
        table,
        event_base,
        use_static_optimization=use_filter,
        use_subscription_index=use_index,
    )

    trace: list[tuple] = []
    for position, block in enumerate(scenario.blocks):
        for name in scenario.removals.get(position, ()):
            if name not in removed:
                table.remove(name)
                removed.add(name)
        for rule in scenario.readds.get(position, ()):
            if rule.name in removed:
                table.add(rule).reset(0)
                removed.discard(rule.name)
        for name in scenario.flips.get(position, ()):
            if name in removed:
                continue
            if name in disabled:
                table.enable(name)
                disabled.discard(name)
            else:
                table.disable(name)
                disabled.add(name)
        batch = handler.store_external(block)
        now = block[-1].timestamp if block else (event_base.latest_timestamp() or 1)
        newly = support.check_after_block(
            batch, now, 0, type_signature=batch.type_signature
        )
        considered: list[str] = []
        while True:
            reference = sorted(
                (
                    state
                    for state in table
                    if state.enabled and state.triggered
                ),
                key=lambda state: (-state.rule.priority, state.definition_order),
            )
            selected = table.select_for_consideration()
            assert selected is (reference[0] if reference else None), (
                "heap selection disagrees with the sorted reference"
            )
            # Exercise the coupling-filtered heaps too.
            for coupling in ECCoupling:
                expected = next(
                    (s for s in reference if s.rule.coupling is coupling), None
                )
                assert table.select_for_consideration(coupling) is expected
            if selected is None:
                break
            considered.append(selected.rule.name)
            selected.mark_considered(now, executed=False)
        trace.append(
            (
                position,
                sorted(state.rule.name for state in newly),
                considered,
            )
        )

    counters = {
        state.rule.name: (state.times_triggered, state.times_considered)
        for state in table.states()
    }
    return {"trace": trace, "counters": counters}


def test_routed_equals_full_scan_on_random_scenarios():
    for seed in range(25):
        scenario = build_scenario(seed)
        routed = run_scenario(scenario, use_index=True)
        scan_filtered = run_scenario(scenario, use_index=False)
        scan_exhaustive = run_scenario(scenario, use_index=False, use_filter=False)
        assert routed == scan_filtered, f"seed {seed}: routed != filtered scan"
        assert routed == scan_exhaustive, f"seed {seed}: routed != exhaustive scan"


def test_routed_equals_full_scan_with_larger_rule_pools():
    for seed in (101, 202):
        scenario = build_scenario(seed, rule_count=40, block_count=30)
        routed = run_scenario(scenario, use_index=True)
        scanned = run_scenario(scenario, use_index=False, use_filter=False)
        assert routed == scanned, f"seed {seed}"


def test_removal_of_triggered_rule_mid_run():
    """Removing a rule that is currently triggered must not corrupt selection."""
    table = RuleTable()
    for name, priority in (("low", 1), ("high", 9)):
        table.add(
            Rule(
                name=name,
                events=parse_expression("create(cls0)"),
                condition=TRUE_CONDITION,
                action=NO_ACTION,
                priority=priority,
            )
        ).reset(0)
    for state in table.states():
        state.mark_triggered(1)
    assert table.select_for_consideration().rule.name == "high"
    table.remove("high")
    assert table.select_for_consideration().rule.name == "low"
    table.remove("low")
    assert table.select_for_consideration() is None
