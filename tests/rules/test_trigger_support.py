"""Tests for the Event Handler and the Trigger Support."""

from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.event_handler import EventHandler
from repro.rules.rule import Rule
from repro.rules.rule_table import RuleTable
from repro.rules.trigger_support import TriggerSupport

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
CREATE_ORDER = EventType(Operation.CREATE, "order")


def make_rule(name: str, events: str) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(events),
        condition=TRUE_CONDITION,
        action=NO_ACTION,
    )


def setup(*rules: Rule, optimized: bool = True):
    event_base = EventBase()
    table = RuleTable()
    for rule in rules:
        state = table.add(rule)
        state.reset(0)
    handler = EventHandler(event_base)
    support = TriggerSupport(table, event_base, use_static_optimization=optimized)
    return event_base, table, handler, support


class TestEventHandler:
    def test_flush_block_returns_only_new_occurrences(self):
        event_base, _, handler, _ = setup()
        event_base.record(CREATE_STOCK, "o1", 1)
        first = handler.flush_block()
        event_base.record(MODIFY_QTY, "o1", 2)
        second = handler.flush_block()
        assert [occ.timestamp for occ in first] == [1]
        assert [occ.timestamp for occ in second] == [2]
        assert handler.pending_count() == 0
        assert handler.blocks_processed == 2

    def test_flush_block_feeds_the_occurred_events_tree(self):
        event_base, _, handler, _ = setup()
        event_base.record(CREATE_STOCK, "o1", 1)
        handler.flush_block()
        assert handler.occurred_events.latest_timestamp(CREATE_STOCK) == 1

    def test_reset_clears_the_tree(self):
        event_base, _, handler, _ = setup()
        event_base.record(CREATE_STOCK, "o1", 1)
        handler.flush_block()
        handler.reset()
        assert len(handler.occurred_events) == 0

    def test_store_external(self):
        event_base, _, handler, _ = setup()
        from repro.events.event import EventOccurrence

        batch = handler.store_external([EventOccurrence(1, CREATE_STOCK, "o1", 1)])
        assert len(batch) == 1
        assert len(event_base) == 1


class TestTriggerSupport:
    def test_rule_becomes_triggered_by_matching_event(self):
        event_base, table, handler, support = setup(make_rule("r", "create(stock)"))
        event_base.record(CREATE_STOCK, "o1", 1)
        newly = support.check_after_block(
            handler.flush_block(), now=1, transaction_start=0
        )
        assert [state.rule.name for state in newly] == ["r"]
        assert table.get("r").triggered

    def test_non_matching_event_is_filtered_without_recomputation(self):
        event_base, table, handler, support = setup(make_rule("r", "create(stock)"))
        event_base.record(CREATE_ORDER, "o9", 1)
        # First block: the filter is not applicable yet (window never seen),
        # so one computation happens; the second irrelevant block is skipped.
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        event_base.record(CREATE_ORDER, "o9", 2)
        support.check_after_block(handler.flush_block(), now=2, transaction_start=0)
        assert support.stats.ts_computations == 1
        assert support.stats.ts_skipped_by_filter == 1
        assert not table.get("r").triggered

    def test_without_optimization_every_block_recomputes(self):
        event_base, table, handler, support = setup(
            make_rule("r", "create(stock)"), optimized=False
        )
        for timestamp in (1, 2, 3):
            event_base.record(CREATE_ORDER, "o9", timestamp)
            support.check_after_block(
                handler.flush_block(), now=timestamp, transaction_start=0
            )
        assert support.stats.ts_computations == 3
        assert support.stats.ts_skipped_by_filter == 0

    def test_triggered_rule_is_not_rechecked(self):
        event_base, table, handler, support = setup(make_rule("r", "create(stock)"))
        event_base.record(CREATE_STOCK, "o1", 1)
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        event_base.record(CREATE_STOCK, "o2", 2)
        support.check_after_block(handler.flush_block(), now=2, transaction_start=0)
        assert support.stats.ts_computations == 1
        assert table.get("r").times_triggered == 1

    def test_negation_rule_triggers_on_any_event_when_window_was_empty(self):
        """The V(E) filter must not hide the R != {} unblocking (see DESIGN.md)."""
        event_base, table, handler, support = setup(
            make_rule("watchdog", "-create(stock)")
        )
        event_base.record(CREATE_ORDER, "o9", 1)  # unrelated event type
        newly = support.check_after_block(
            handler.flush_block(), now=1, transaction_start=0
        )
        assert [state.rule.name for state in newly] == ["watchdog"]

    def test_empty_block_changes_nothing(self):
        event_base, table, handler, support = setup(make_rule("r", "create(stock)"))
        assert support.check_after_block([], now=1, transaction_start=0) == []
        assert support.stats.ts_computations == 0

    def test_conjunction_rule_triggers_only_when_complete(self):
        event_base, table, handler, support = setup(
            make_rule("r", "create(stock) + modify(stock.quantity)")
        )
        event_base.record(CREATE_STOCK, "o1", 1)
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        assert not table.get("r").triggered
        event_base.record(MODIFY_QTY, "o2", 2)
        support.check_after_block(handler.flush_block(), now=2, transaction_start=0)
        assert table.get("r").triggered

    def test_recheck_all_catches_pending_rules(self):
        event_base, table, handler, support = setup(make_rule("r", "create(stock)"))
        event_base.record(CREATE_STOCK, "o1", 1)
        handler.flush_block()
        # check_after_block was never called (e.g. the block check was skipped);
        # recheck_all at commit still finds the triggering.
        newly = support.recheck_all(now=2, transaction_start=0)
        assert [state.rule.name for state in newly] == ["r"]

    def test_stats_as_dict(self):
        _, _, _, support = setup(make_rule("r", "create(stock)"))
        stats = support.stats.as_dict()
        assert {
            "blocks",
            "rules_checked",
            "ts_computations",
            "rules_routed",
            "rules_bypassed_by_index",
        } <= set(stats)


class TestTriggerPlannerRouting:
    def test_block_ingest_carries_the_type_signature(self):
        event_base, _, handler, _ = setup()
        event_base.record(CREATE_STOCK, "o1", 1)
        event_base.record(MODIFY_QTY, "o1", 1)
        batch = handler.flush_block()
        assert batch.type_signature == {CREATE_STOCK, MODIFY_QTY}
        assert len(batch) == 2 and list(batch)[0].event_type is CREATE_STOCK

    def test_unsubscribed_rules_are_bypassed_not_visited(self):
        # The order rule needs both conjuncts, so create(order) occurrences
        # route to it without triggering it (it stays a candidate).
        event_base, table, handler, support = setup(
            make_rule("stock_rule", "create(stock)"),
            make_rule("order_rule", "create(order) + modify(stock.quantity)"),
        )
        # First block: both rules are pending full-check (no window seen yet).
        event_base.record(CREATE_ORDER, "o1", 1)
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        assert support.stats.rules_routed == 1  # order_rule, via the index
        assert support.stats.rules_checked == 2  # + stock_rule, full-check
        # Second block: both windows were seen non-empty, so only the
        # subscribed rule is visited and the other is bypassed by the index.
        event_base.record(CREATE_ORDER, "o2", 2)
        support.check_after_block(handler.flush_block(), now=2, transaction_start=0)
        assert support.stats.rules_checked == 3
        assert support.stats.rules_bypassed_by_index == 1
        assert support.stats.ts_skipped_by_filter == 1

    def test_index_routes_class_level_patterns_to_attribute_occurrences(self):
        event_base, table, handler, support = setup(
            make_rule("class_watch", "modify(stock)"),
            make_rule("qty_watch", "modify(stock.quantity)"),
            make_rule("other", "create(order)"),
        )
        event_base.record(CREATE_STOCK, "o1", 1)  # gives everyone a window
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        before = support.stats.rules_checked
        event_base.record(MODIFY_QTY, "o1", 2)
        newly = support.check_after_block(
            handler.flush_block(), now=2, transaction_start=0
        )
        assert sorted(state.rule.name for state in newly) == [
            "class_watch", "qty_watch"
        ]
        assert support.stats.rules_checked - before == 2  # "other" bypassed

    def test_disabling_the_index_keeps_the_full_scan_path(self):
        event_base, table, handler, support = setup(
            make_rule("a", "create(stock)"), make_rule("b", "create(order)")
        )
        support.use_subscription_index = False
        event_base.record(CREATE_ORDER, "o1", 1)
        support.check_after_block(handler.flush_block(), now=1, transaction_start=0)
        event_base.record(CREATE_ORDER, "o2", 2)
        support.check_after_block(handler.flush_block(), now=2, transaction_start=0)
        assert support.stats.rules_routed == 0
        assert support.stats.rules_bypassed_by_index == 0
        assert support.stats.ts_skipped_by_filter == 1  # per-rule filter still works
        assert table.get("b").triggered
