"""End-to-end scenarios combining composite events, conditions and actions."""

from repro.oodb.database import ChimeraDatabase
from repro.workloads.stock import REORDER_RULE, SHELF_REFILL_RULE, StockScenario


def make_db() -> ChimeraDatabase:
    db = ChimeraDatabase()
    db.define_class(
        "stock",
        {
            "name": str,
            "quantity": int,
            "minquantity": int,
            "maxquantity": int,
            "onorder": int,
        },
    )
    db.define_class("show", {"name": str, "quantity": int, "item": object})
    db.define_class("order", {"customer": str, "amount": int})
    db.define_class("stockOrder", {"item": object, "delquantity": int})
    return db


class TestReorderScenario:
    """REORDER_RULE uses the instance-oriented precedence operator."""

    def test_reorder_fires_when_min_raised_then_quantity_dropped(self):
        db = make_db()
        db.define_rule(REORDER_RULE)
        with db.transaction() as tx:
            item = tx.create(
                "stock",
                {"quantity": 20, "minquantity": 5, "maxquantity": 100, "onorder": 0},
            )
            tx.modify(item.oid, "minquantity", 15)
            tx.modify(item.oid, "quantity", 10)
        assert db.get(item.oid).get("onorder") == 1
        assert db.count("stockOrder") == 1

    def test_reorder_requires_the_order_min_before_quantity(self):
        db = make_db()
        db.define_rule(REORDER_RULE)
        with db.transaction() as tx:
            item = tx.create(
                "stock",
                {"quantity": 20, "minquantity": 5, "maxquantity": 100, "onorder": 0},
            )
            tx.modify(item.oid, "quantity", 10)
            tx.modify(item.oid, "minquantity", 15)
            # quantity (10) < minquantity (15), but the events arrived in the
            # wrong order for the instance precedence, so no reorder happens...
        assert db.count("stockOrder") == 0

    def test_reorder_requires_same_object(self):
        db = make_db()
        db.define_rule(REORDER_RULE)
        with db.transaction() as tx:
            first = tx.create(
                "stock",
                {"quantity": 3, "minquantity": 10, "maxquantity": 100, "onorder": 0},
            )
            second = tx.create(
                "stock",
                {"quantity": 50, "minquantity": 10, "maxquantity": 100, "onorder": 0},
            )
            tx.modify(first.oid, "minquantity", 12)
            tx.modify(second.oid, "quantity", 40)
        # The precedence happened across two different objects: no triggering
        # of the instance-oriented expression.
        assert db.count("stockOrder") == 0


class TestShelfRefillScenario:
    """SHELF_REFILL_RULE is deferred and uses negation of a sequence."""

    def test_refill_happens_at_commit_when_no_stock_order_activity(self):
        db = make_db()
        db.define_rule(SHELF_REFILL_RULE)
        with db.transaction() as tx:
            shelf = tx.create("show", {"quantity": 10})
            tx.modify(shelf.oid, "quantity", 2)
            assert db.get(shelf.oid).get("quantity") == 2  # deferred: nothing yet
        assert db.get(shelf.oid).get("quantity") == 20

    def test_no_refill_when_stock_order_activity_precedes_the_shelf_change(self):
        db = make_db()
        db.define_rule(SHELF_REFILL_RULE)
        with db.transaction() as tx:
            shelf = tx.create("show", {"quantity": 10})
            order = tx.create("stockOrder", {"delquantity": 0})
            tx.modify(order.oid, "delquantity", 7)
            tx.modify(shelf.oid, "quantity", 2)
        # The negated sequence was already active when the shelf changed, so
        # the composite event never became active and the rule never triggered.
        assert db.get(shelf.oid).get("quantity") == 2

    def test_later_stock_order_activity_does_not_detrigger(self):
        """Once T(r, t1) held for some t1, the rule stays triggered (paper §4.5)."""
        db = make_db()
        db.define_rule(SHELF_REFILL_RULE)
        with db.transaction() as tx:
            shelf = tx.create("show", {"quantity": 10})
            tx.modify(shelf.oid, "quantity", 2)  # composite active here -> triggered
            order = tx.create("stockOrder", {"delquantity": 0})
            tx.modify(order.oid, "delquantity", 7)  # too late: no detriggering
        assert db.get(shelf.oid).get("quantity") == 20

    def test_no_refill_when_shelf_quantity_is_healthy(self):
        db = make_db()
        db.define_rule(SHELF_REFILL_RULE)
        with db.transaction() as tx:
            shelf = tx.create("show", {"quantity": 10})
            tx.modify(shelf.oid, "quantity", 8)
        assert db.get(shelf.oid).get("quantity") == 8


class TestStockScenarioWorkload:
    def test_scenario_runs_days_without_errors(self):
        scenario = StockScenario(items=6, shelf_products=3, seed=7)
        scenario.run_days(2, operations_per_day=25)
        stats = scenario.database.rule_statistics()
        assert set(stats) == {"checkStockQty", "reorderStock", "shelfRefill"}
        # The workload is designed to exercise the rules.
        assert sum(rule["triggered"] for rule in stats.values()) > 0

    def test_optimized_and_naive_scenarios_agree_on_rule_outcomes(self):
        optimized = StockScenario(items=6, shelf_products=3, seed=11)
        naive = StockScenario(
            items=6, shelf_products=3, seed=11, use_static_optimization=False
        )
        optimized.run_days(2, operations_per_day=30)
        naive.run_days(2, operations_per_day=30)

        opt_stats = optimized.database.rule_statistics()
        naive_stats = naive.database.rule_statistics()
        for name in opt_stats:
            assert opt_stats[name]["executed"] == naive_stats[name]["executed"], name
            assert opt_stats[name]["triggered"] == naive_stats[name]["triggered"], name

        # The optimization's whole point: fewer ts computations, same outcome.
        assert (
            optimized.database.trigger_statistics()["ts_computations"]
            <= naive.database.trigger_statistics()["ts_computations"]
        )

    def test_final_object_states_agree_between_optimized_and_naive(self):
        optimized = StockScenario(items=5, shelf_products=2, seed=3)
        naive = StockScenario(
            items=5, shelf_products=2, seed=3, use_static_optimization=False
        )
        optimized.run_day(40)
        naive.run_day(40)
        left = {
            str(obj.oid): obj.snapshot()
            for obj in optimized.database.store.all_objects()
        }
        right = {
            str(obj.oid): obj.snapshot() for obj in naive.database.store.all_objects()
        }
        assert left == right
