"""Test package."""
