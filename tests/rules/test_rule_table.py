"""Tests for rule definitions, rule state and the Rule Table."""

import pytest

from repro.core.parser import parse_expression
from repro.errors import DuplicateRuleError, RuleDefinitionError, UnknownRuleError
from repro.events.event import EventType, Operation
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.rule import ConsumptionMode, ECCoupling, Rule, RuleState
from repro.rules.rule_table import RuleTable


def make_rule(
    name: str, events: str = "create(stock)", priority: int = 0, **kwargs
) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(events),
        condition=TRUE_CONDITION,
        action=NO_ACTION,
        priority=priority,
        **kwargs,
    )


class TestRuleDefinition:
    def test_invalid_name_rejected(self):
        with pytest.raises(RuleDefinitionError):
            make_rule("not a name")

    def test_targeted_rule_checks_event_classes(self):
        with pytest.raises(RuleDefinitionError):
            Rule(
                name="bad",
                events=parse_expression("create(show)"),
                condition=TRUE_CONDITION,
                action=NO_ACTION,
                target_class="stock",
            )

    def test_describe_mentions_every_part(self):
        rule = make_rule("ok", coupling=ECCoupling.DEFERRED, target_class="stock")
        description = rule.describe()
        assert "deferred" in description
        assert "create(stock)" in description
        assert "for stock" in description


class TestRuleState:
    def test_mark_triggered_and_considered(self):
        state = RuleState(rule=make_rule("r"))
        state.mark_triggered(5)
        assert state.triggered and state.times_triggered == 1
        state.mark_considered(6, executed=True)
        assert not state.triggered
        assert state.last_consideration == 6
        assert state.times_executed == 1
        assert [kind for kind, _ in state.history] == ["triggered", "executed"]

    def test_consuming_rule_advances_last_consumption(self):
        state = RuleState(rule=make_rule("r", consumption=ConsumptionMode.CONSUMING))
        state.mark_considered(6, executed=False)
        assert state.last_consumption == 6

    def test_preserving_rule_keeps_last_consumption(self):
        state = RuleState(rule=make_rule("r", consumption=ConsumptionMode.PRESERVING))
        state.reset(transaction_start=1)
        state.mark_considered(6, executed=False)
        assert state.last_consumption == 1

    def test_observation_window_start(self):
        consuming = RuleState(rule=make_rule("r"))
        consuming.reset(transaction_start=2)
        consuming.mark_considered(7, executed=False)
        assert consuming.observation_window_start(transaction_start=2) == 7

        preserving = RuleState(
            rule=make_rule("p", consumption=ConsumptionMode.PRESERVING)
        )
        preserving.reset(transaction_start=2)
        preserving.mark_considered(7, executed=False)
        assert preserving.observation_window_start(transaction_start=2) == 2

    def test_reset_clears_flags(self):
        state = RuleState(rule=make_rule("r"))
        state.mark_triggered(3)
        state.had_nonempty_window = True
        state.reset(transaction_start=10)
        assert not state.triggered
        assert not state.had_nonempty_window
        assert state.triggering_window_start(10) == 10


class TestRuleTable:
    def test_add_and_get(self):
        table = RuleTable()
        table.add(make_rule("a"))
        assert "a" in table
        assert table.get("a").rule.name == "a"
        assert len(table) == 1

    def test_duplicate_rejected(self):
        table = RuleTable()
        table.add(make_rule("a"))
        with pytest.raises(DuplicateRuleError):
            table.add(make_rule("a"))

    def test_remove(self):
        table = RuleTable()
        table.add(make_rule("a"))
        removed = table.remove("a")
        assert removed.name == "a"
        with pytest.raises(UnknownRuleError):
            table.remove("a")
        with pytest.raises(UnknownRuleError):
            table.get("a")

    def test_rules_in_definition_order(self):
        table = RuleTable()
        for name in ("a", "b", "c"):
            table.add(make_rule(name))
        assert [rule.name for rule in table.rules()] == ["a", "b", "c"]

    def test_priority_order_selection(self):
        table = RuleTable()
        table.add(make_rule("low", priority=1))
        table.add(make_rule("high", priority=9))
        table.add(make_rule("mid", priority=5))
        for state in table.states():
            state.mark_triggered(1)
        assert table.select_for_consideration().rule.name == "high"
        ordered = [state.rule.name for state in table.triggered_states()]
        assert ordered == ["high", "mid", "low"]

    def test_ties_broken_by_definition_order(self):
        table = RuleTable()
        table.add(make_rule("first", priority=3))
        table.add(make_rule("second", priority=3))
        for state in table.states():
            state.mark_triggered(1)
        assert table.select_for_consideration().rule.name == "first"

    def test_selection_filters_by_coupling(self):
        table = RuleTable()
        table.add(make_rule("now", coupling=ECCoupling.IMMEDIATE))
        table.add(make_rule("later", coupling=ECCoupling.DEFERRED, priority=10))
        for state in table.states():
            state.mark_triggered(1)
        assert table.select_for_consideration(ECCoupling.IMMEDIATE).rule.name == "now"
        assert table.select_for_consideration(ECCoupling.DEFERRED).rule.name == "later"
        assert table.select_for_consideration().rule.name == "later"

    def test_disabled_rules_are_not_selected(self):
        table = RuleTable()
        table.add(make_rule("a"))
        table.get("a").mark_triggered(1)
        table.disable("a")
        assert table.select_for_consideration() is None
        table.enable("a")
        assert table.untriggered_states()[0].rule.name == "a"

    def test_untriggered_states(self):
        table = RuleTable()
        table.add(make_rule("a"))
        table.add(make_rule("b"))
        table.get("a").mark_triggered(1)
        assert [state.rule.name for state in table.untriggered_states()] == ["b"]

    def test_reset_all(self):
        table = RuleTable()
        table.add(make_rule("a"))
        table.get("a").mark_triggered(1)
        table.reset_all(transaction_start=5)
        assert not table.get("a").triggered
        assert table.get("a").last_consideration == 5

    def test_untriggered_count_tracks_transitions(self):
        table = RuleTable()
        for name in ("a", "b", "c"):
            table.add(make_rule(name))
        assert table.untriggered_count() == 3
        table.get("a").mark_triggered(1)
        assert table.untriggered_count() == 2
        table.disable("b")
        assert table.untriggered_count() == 1
        table.get("a").mark_considered(2, executed=False)
        assert table.untriggered_count() == 2
        table.enable("b")
        assert table.untriggered_count() == 3
        table.remove("c")
        assert table.untriggered_count() == 2


class TestSubscriptionIndex:
    """The inverted event-type → rule index used by the TriggerPlanner."""

    CREATE_STOCK = EventType(Operation.CREATE, "stock")
    MODIFY_STOCK = EventType(Operation.MODIFY, "stock")
    MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
    MODIFY_NAME = EventType(Operation.MODIFY, "stock", "name")
    CREATE_ORDER = EventType(Operation.CREATE, "order")

    def build(self) -> RuleTable:
        table = RuleTable()
        table.add(make_rule("on_create", "create(stock)"))
        table.add(make_rule("on_class_modify", "modify(stock)"))
        table.add(make_rule("on_qty", "modify(stock.quantity)"))
        table.add(make_rule("on_order", "create(order)"))
        return table

    def names(self, table, *types):
        return sorted(table.subscribers_for_signature(frozenset(types)))

    def test_exact_match(self):
        table = self.build()
        assert self.names(table, self.CREATE_STOCK) == ["on_create"]
        assert self.names(table, self.CREATE_ORDER) == ["on_order"]

    def test_attribute_occurrence_reaches_class_level_watcher(self):
        table = self.build()
        assert self.names(table, self.MODIFY_QTY) == ["on_class_modify", "on_qty"]

    def test_class_level_occurrence_reaches_attribute_watcher(self):
        table = self.build()
        assert self.names(table, self.MODIFY_STOCK) == ["on_class_modify", "on_qty"]

    def test_unrelated_attribute_does_not_reach_attribute_watcher(self):
        table = self.build()
        assert self.names(table, self.MODIFY_NAME) == ["on_class_modify"]

    def test_signature_union(self):
        table = self.build()
        assert self.names(table, self.CREATE_STOCK, self.CREATE_ORDER) == [
            "on_create",
            "on_order",
        ]

    def test_negation_flips_subscription_sign(self):
        # -create(stock): a new create(stock) is a negative variation only —
        # it can never activate the rule, so the index must not route it.
        table = RuleTable()
        table.add(make_rule("neg", "-create(stock)"))
        assert self.names(table, self.CREATE_STOCK) == []

    def test_remove_unindexes(self):
        table = self.build()
        table.remove("on_qty")
        assert self.names(table, self.MODIFY_QTY) == ["on_class_modify"]

    def test_new_rules_start_in_pending_full_check(self):
        table = self.build()
        assert sorted(table.pending_full_check_states()) == [
            "on_class_modify",
            "on_create",
            "on_order",
            "on_qty",
        ]

    def test_pending_full_check_prunes_and_rearms(self):
        table = self.build()
        state = table.get("on_create")
        state.had_nonempty_window = True
        assert "on_create" not in table.pending_full_check_states()
        # Consideration clears the flag: the rule must be full-checked again.
        state.mark_considered(5, executed=False)
        assert "on_create" in table.pending_full_check_states()


class TestPriorityHeaps:
    """Lazy-invalidation heap selection against re-trigger/disable/remove churn."""

    def test_retrigger_after_consideration_uses_fresh_entry(self):
        table = RuleTable()
        table.add(make_rule("a", priority=5))
        table.add(make_rule("b", priority=1))
        table.get("a").mark_triggered(1)
        table.get("b").mark_triggered(1)
        assert table.select_for_consideration().rule.name == "a"
        table.get("a").mark_considered(2, executed=False)
        assert table.select_for_consideration().rule.name == "b"
        table.get("a").mark_triggered(3)
        assert table.select_for_consideration().rule.name == "a"

    def test_disable_hides_triggered_rule_enable_does_not_resurrect(self):
        table = RuleTable()
        table.add(make_rule("a", priority=5))
        table.get("a").mark_triggered(1)
        table.disable("a")
        assert table.select_for_consideration() is None
        # disable() clears the triggered flag (paper semantics), so re-enabling
        # must not bring the stale heap entry back to life.
        table.enable("a")
        assert table.select_for_consideration() is None
        table.get("a").mark_triggered(2)
        assert table.select_for_consideration().rule.name == "a"

    def test_selection_is_stable_under_repeated_peeks(self):
        table = RuleTable()
        table.add(make_rule("a", priority=2))
        table.get("a").mark_triggered(1)
        assert table.select_for_consideration() is table.select_for_consideration()

    def test_readding_a_removed_name_does_not_resurrect_stale_entries(self):
        # The old rule's heap entry must not survive a remove + re-add under
        # the same name (tokens are table-global, not per-name).
        table = RuleTable()
        table.add(make_rule("x", priority=10))
        table.add(make_rule("y", priority=5))
        table.get("x").mark_triggered(1)
        table.remove("x")
        table.add(make_rule("x", priority=1))
        table.get("x").mark_triggered(2)
        table.get("y").mark_triggered(2)
        assert table.select_for_consideration().rule.name == "y"

    def test_disable_evicts_from_pending_full_check(self):
        table = RuleTable()
        table.add(make_rule("a"))
        assert "a" in table.pending_full_check_states()
        table.disable("a")
        assert "a" not in table.pending_full_check_states()
        table.enable("a")
        assert "a" in table.pending_full_check_states()

    def test_reset_all_clears_heaps(self):
        table = RuleTable()
        table.add(make_rule("a", priority=2))
        table.get("a").mark_triggered(1)
        table.reset_all(transaction_start=4)
        assert table.select_for_consideration() is None
        assert table.triggered_states() == []


class TestHeapCompaction:
    """Counter-driven compaction bounds the heaps under trigger/consider churn."""

    def test_churn_keeps_heap_bounded_and_compacts(self):
        table = RuleTable()
        rules = 20
        for index in range(rules):
            table.add(make_rule(f"r{index}", priority=index % 5))
        # Heavy enable/disable-style churn: every rule triggers and is
        # considered over and over without ever surfacing most of its stale
        # entries through _peek (we never drain the queue).
        instant = 1
        for _ in range(50):
            for index in range(rules):
                table.get(f"r{index}").mark_triggered(instant)
            instant += 1
            for index in range(rules):
                table.get(f"r{index}").mark_considered(instant, executed=False)
            instant += 1
        assert table.heap_compactions > 0
        # Without compaction the immediate heap would hold ~50 * 20 entries;
        # with it, at most 2 * live + threshold survive at any point.
        from repro.rules.rule_table import _HEAP_COMPACT_THRESHOLD

        for size in table.heap_sizes().values():
            assert size <= max(_HEAP_COMPACT_THRESHOLD, 2 * rules)

    def test_churn_with_disable_enable_cycles(self):
        table = RuleTable()
        rules = 24
        for index in range(rules):
            table.add(make_rule(f"r{index}", priority=index % 3))
        instant = 1
        for round_ in range(40):
            for index in range(rules):
                table.get(f"r{index}").mark_triggered(instant)
            instant += 1
            for index in range(rules):
                name = f"r{index}"
                if (index + round_) % 2:
                    table.disable(name)
                    table.enable(name)
                else:
                    table.get(name).mark_considered(instant, executed=False)
            instant += 1
        from repro.rules.rule_table import _HEAP_COMPACT_THRESHOLD

        assert table.heap_compactions > 0
        for size in table.heap_sizes().values():
            assert size <= max(_HEAP_COMPACT_THRESHOLD, 2 * rules)
        # Selection still agrees with the brute-force reference after churn.
        for index in range(rules):
            table.get(f"r{index}").mark_triggered(instant)
        reference = sorted(
            (state for state in table if state.enabled and state.triggered),
            key=lambda state: (-state.rule.priority, state.definition_order),
        )
        assert table.select_for_consideration() is reference[0]

    def test_pending_prune_sheds_dict_capacity(self):
        # Regression: every fresh rule starts in the pending-full-check set,
        # so after the first checked block the dict is pruned from N rules to
        # ~none — but a CPython dict never shrinks in place, and the planner
        # iterates this set on every block.  The prune must rebuild the dict.
        import sys

        table = RuleTable()
        for index in range(5_000):
            table.add(make_rule(f"r{index}"))
        peak = sys.getsizeof(table._pending_full_check)
        for state in table:
            state.had_nonempty_window = True
        remaining = table.pending_full_check_states()
        assert not remaining
        assert sys.getsizeof(table._pending_full_check) < peak / 10

    def test_stale_counter_stays_in_step_with_peek_discards(self):
        table = RuleTable()
        for index in range(40):
            table.add(make_rule(f"r{index}", priority=1))
        for index in range(40):
            table.get(f"r{index}").mark_triggered(1)
        # Drain everything through selection: every discard goes through _peek.
        drained = []
        while (state := table.select_for_consideration()) is not None:
            drained.append(state.rule.name)
            state.mark_considered(2, executed=False)
        assert len(drained) == 40
        for coupling, count in table._stale_counts.items():
            assert count == sum(
                0 if table._entry_valid(entry) else 1
                for entry in table._heaps[coupling]
            )
