"""Tests for the textual rule-definition language."""

import pytest

from repro.core.expressions import InstancePrecedence, SetConjunction, SetDisjunction
from repro.errors import RuleDefinitionError
from repro.rules.actions import CreateStatement, DeleteStatement, ModifyStatement
from repro.rules.conditions import AtFormula, ClassRange, Comparison, OccurredFormula
from repro.rules.language import parse_rule, parse_rules
from repro.rules.rule import ConsumptionMode, ECCoupling
from repro.workloads.stock import CHECK_STOCK_QTY_RULE


class TestPaperRule:
    """The §2 example rule parses into exactly the expected structure."""

    def test_header(self):
        rule = parse_rule(CHECK_STOCK_QTY_RULE)
        assert rule.name == "checkStockQty"
        assert rule.coupling is ECCoupling.IMMEDIATE
        assert rule.consumption is ConsumptionMode.CONSUMING
        assert rule.target_class == "stock"

    def test_events_are_qualified_with_the_target_class(self):
        rule = parse_rule(CHECK_STOCK_QTY_RULE)
        assert str(rule.events) == "create(stock)"

    def test_condition_structure(self):
        rule = parse_rule(CHECK_STOCK_QTY_RULE)
        atoms = list(rule.condition.atoms)
        assert isinstance(atoms[0], ClassRange)
        assert isinstance(atoms[1], OccurredFormula)
        assert isinstance(atoms[2], Comparison)
        assert atoms[0].class_name == "stock"
        assert atoms[2].op == ">"

    def test_action_structure(self):
        rule = parse_rule(CHECK_STOCK_QTY_RULE)
        statement = rule.action.statements[0]
        assert isinstance(statement, ModifyStatement)
        assert statement.class_name == "stock"
        assert statement.attribute == "quantity"

    def test_source_is_preserved(self):
        rule = parse_rule(CHECK_STOCK_QTY_RULE)
        assert "define immediate checkStockQty" in rule.source


class TestHeaderVariants:
    def test_deferred_and_preserving_modifiers(self):
        rule = parse_rule(
            """
            define deferred preserving audit for stock
            events delete
            action delete(S)
            end
            """
        )
        assert rule.coupling is ECCoupling.DEFERRED
        assert rule.consumption is ConsumptionMode.PRESERVING

    def test_untargeted_rule(self):
        rule = parse_rule(
            """
            define watchOrders
            events create(order) , delete(order)
            end
            """
        )
        assert rule.target_class is None
        assert isinstance(rule.events, SetDisjunction)

    def test_priority_and_consumption_clauses(self):
        rule = parse_rule(
            """
            define immediate ranked for stock
            events create
            action modify(stock.quantity, S, 1)
            priority 7
            consumption preserving
            end
            """
        )
        assert rule.priority == 7
        assert rule.consumption is ConsumptionMode.PRESERVING

    def test_missing_name_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define immediate for stock events create end")

    def test_missing_events_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r for stock condition stock(S) end")

    def test_missing_end_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r for stock events create")

    def test_text_after_end_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r for stock events create end garbage")

    def test_must_start_with_define(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("events create end")

    def test_duplicate_clause_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r for stock events create events delete end")

    def test_invalid_priority_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r for stock events create priority high end")


class TestEventClause:
    def test_bare_attribute_modify_is_qualified(self):
        rule = parse_rule(
            """
            define watch for stock
            events modify(quantity)
            end
            """
        )
        assert str(rule.events) == "modify(stock.quantity)"

    def test_composite_events_with_instance_operators(self):
        rule = parse_rule(
            """
            define reorder for stock
            events modify(minquantity) <= modify(quantity)
            end
            """
        )
        assert isinstance(rule.events, InstancePrecedence)

    def test_fully_qualified_events_left_alone(self):
        rule = parse_rule(
            """
            define watch
            events create(stock) + modify(show.quantity)
            end
            """
        )
        assert isinstance(rule.events, SetConjunction)

    def test_targeted_rule_rejects_foreign_classes(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule(
                """
                define watch for stock
                events create(stock) , create(show)
                end
                """
            )


class TestConditionClause:
    def test_at_formula(self):
        rule = parse_rule(
            """
            define watch for stock
            events modify(quantity)
            condition stock(S), at(create(stock) <= modify(quantity), S, T), T > 3
            end
            """
        )
        atoms = list(rule.condition.atoms)
        assert isinstance(atoms[1], AtFormula)
        assert atoms[1].time_variable == "T"

    def test_holds_alias(self):
        rule = parse_rule(
            """
            define watch for stock
            events create
            condition holds(create(stock), S)
            end
            """
        )
        assert isinstance(rule.condition.atoms[0], OccurredFormula)
        assert rule.condition.atoms[0].keyword == "holds"

    def test_string_and_boolean_constants(self):
        rule = parse_rule(
            """
            define watch for stock
            events create
            condition stock(S), S.name = 'bolt', S.active = true
            end
            """
        )
        comparisons = [
            atom for atom in rule.condition.atoms if isinstance(atom, Comparison)
        ]
        assert comparisons[0].right.value == "bolt"
        assert comparisons[1].right.value is True

    def test_arithmetic_in_comparisons(self):
        rule = parse_rule(
            """
            define watch for stock
            events create
            condition stock(S), S.quantity > S.maxquantity - 10
            end
            """
        )
        comparison = rule.condition.atoms[1]
        assert "maxquantity" in str(comparison)

    def test_unparseable_atom_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule(
                """
                define watch for stock
                events create
                condition what is this
                end
                """
            )

    def test_missing_condition_is_true(self):
        rule = parse_rule("define watch for stock events create end")
        assert list(rule.condition.atoms) == []


class TestActionClause:
    def test_create_delete_and_modify_statements(self):
        rule = parse_rule(
            """
            define watch
            events create(stock)
            condition stock(S)
            action create(stockOrder, item = S, delquantity = 0), modify(stock.onorder, S, 1), delete(S)
            end
            """
        )
        statements = rule.action.statements
        assert isinstance(statements[0], CreateStatement)
        assert isinstance(statements[1], ModifyStatement)
        assert isinstance(statements[2], DeleteStatement)
        assert dict(statements[0].values)["delquantity"].value == 0

    def test_unknown_statement_rejected(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r events create(stock) action drop(S) end")

    def test_modify_argument_count_checked(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule(
                "define r events create(stock) action modify(stock.quantity, S) end"
            )

    def test_create_assignments_checked(self):
        with pytest.raises(RuleDefinitionError):
            parse_rule("define r events create(stock) action create(stockOrder, 5) end")


class TestParseRules:
    def test_multiple_definitions(self):
        text = (
            "define a for stock events create end\n"
            "define b for stock events delete end\n"
        )
        rules = parse_rules(text)
        assert [rule.name for rule in rules] == ["a", "b"]

    def test_empty_text(self):
        assert parse_rules("   \n  ") == []
