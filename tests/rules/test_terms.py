"""Tests for value terms used by conditions and actions."""

import pytest

from repro.errors import ConditionError
from repro.oodb.objects import ObjectStore
from repro.rules.terms import AttrRef, BinOp, Const, VarRef


@pytest.fixture
def store_and_binding():
    store = ObjectStore()
    obj = store.insert("stock", {"quantity": 5, "maxquantity": 100}, timestamp=1)
    return store, {"S": obj.oid, "T": 7}


class TestConst:
    def test_value(self, store_and_binding):
        store, binding = store_and_binding
        assert Const(42).evaluate(binding, store) == 42
        assert Const("x").variables() == set()


class TestVarRef:
    def test_bound_variable(self, store_and_binding):
        store, binding = store_and_binding
        assert VarRef("T").evaluate(binding, store) == 7
        assert VarRef("T").variables() == {"T"}

    def test_unbound_variable_raises(self, store_and_binding):
        store, binding = store_and_binding
        with pytest.raises(ConditionError):
            VarRef("missing").evaluate(binding, store)


class TestAttrRef:
    def test_reads_attribute_of_bound_object(self, store_and_binding):
        store, binding = store_and_binding
        assert AttrRef("S", "quantity").evaluate(binding, store) == 5

    def test_unbound_variable_raises(self, store_and_binding):
        store, binding = store_and_binding
        with pytest.raises(ConditionError):
            AttrRef("X", "quantity").evaluate(binding, store)

    def test_non_object_binding_raises(self, store_and_binding):
        store, binding = store_and_binding
        with pytest.raises(ConditionError):
            AttrRef("T", "quantity").evaluate(binding, store)

    def test_str(self):
        assert str(AttrRef("S", "quantity")) == "S.quantity"


class TestBinOp:
    def test_arithmetic(self, store_and_binding):
        store, binding = store_and_binding
        term = BinOp("+", AttrRef("S", "quantity"), Const(3))
        assert term.evaluate(binding, store) == 8
        assert BinOp("*", Const(2), Const(5)).evaluate(binding, store) == 10
        assert BinOp("-", Const(2), Const(5)).evaluate(binding, store) == -3
        assert BinOp("/", Const(10), Const(4)).evaluate(binding, store) == 2.5

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            BinOp("%", Const(1), Const(2))

    def test_none_operand_raises(self, store_and_binding):
        store, binding = store_and_binding
        term = BinOp("+", AttrRef("S", "minquantity"), Const(3))
        with pytest.raises(ConditionError):
            term.evaluate(binding, store)

    def test_variables_are_collected(self):
        term = BinOp("+", AttrRef("S", "quantity"), VarRef("T"))
        assert term.variables() == {"S", "T"}
