"""Tests for rule conditions: class ranges, event formulas and comparisons."""

import pytest

from repro.core.parser import parse_expression
from repro.errors import ConditionError
from repro.events.clock import TransactionClock
from repro.events.event_base import EventBase
from repro.oodb.objects import ObjectStore
from repro.oodb.operations import OperationExecutor
from repro.oodb.schema import Schema
from repro.rules.conditions import (
    AtFormula,
    CallableAtom,
    ClassRange,
    Comparison,
    Condition,
    ConditionContext,
    OccurredFormula,
    TRUE_CONDITION,
)
from repro.rules.terms import AttrRef, Const


@pytest.fixture
def environment():
    """A small populated store with its Event Base."""
    schema = Schema()
    schema.define("stock", {"quantity": int, "maxquantity": int})
    schema.define("order", {"amount": int})
    schema.define("notFilledOrder", {"amount": int}, superclass="order")
    store = ObjectStore()
    event_base = EventBase()
    operations = OperationExecutor(schema, store, event_base, TransactionClock())
    high = operations.create("stock", {"quantity": 150, "maxquantity": 100}).object
    low = operations.create("stock", {"quantity": 10, "maxquantity": 100}).object
    operations.modify(high.oid, "quantity", 160)
    operations.create("notFilledOrder", {"amount": 3})
    context = ConditionContext(
        schema=schema,
        store=store,
        window=event_base.full_window(),
        now=event_base.full_window().latest_timestamp(),
    )
    return context, high, low


class TestClassRange:
    def test_binds_every_member(self, environment):
        context, high, low = environment
        condition = Condition((ClassRange("S", "stock"),))
        bindings = condition.evaluate(context)
        assert {binding["S"] for binding in bindings} == {high.oid, low.oid}

    def test_includes_subclass_members(self, environment):
        context, *_ = environment
        condition = Condition((ClassRange("O", "order"),))
        assert len(condition.evaluate(context)) == 1

    def test_prebound_variable_is_filtered_not_expanded(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                OccurredFormula(parse_expression("modify(stock.quantity)"), "S"),
                ClassRange("S", "stock"),
            )
        )
        bindings = condition.evaluate(context)
        assert [binding["S"] for binding in bindings] == [high.oid]


class TestOccurredFormula:
    def test_binds_affected_objects(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                OccurredFormula(
                    parse_expression("create(stock) += modify(stock.quantity)"), "S"
                ),
            )
        )
        bindings = condition.evaluate(context)
        assert [binding["S"] for binding in bindings] == [high.oid]

    def test_rejects_set_oriented_expression(self):
        with pytest.raises(ConditionError):
            OccurredFormula(parse_expression("create(stock) + delete(stock)"), "S")

    def test_filters_already_bound_variable(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                ClassRange("S", "stock"),
                OccurredFormula(parse_expression("modify(stock.quantity)"), "S"),
            )
        )
        bindings = condition.evaluate(context)
        assert [binding["S"] for binding in bindings] == [high.oid]

    def test_holds_keyword_is_supported(self, environment):
        context, high, low = environment
        formula = OccurredFormula(
            parse_expression("create(stock)"), "S", keyword="holds"
        )
        assert "holds(" in str(formula)
        assert len(Condition((formula,)).evaluate(context)) == 2


class TestAtFormula:
    def test_binds_object_and_instants(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                AtFormula(
                    parse_expression("create(stock) <= modify(stock.quantity)"),
                    "S",
                    "T",
                ),
            )
        )
        bindings = condition.evaluate(context)
        assert len(bindings) == 1
        assert bindings[0]["S"] == high.oid
        assert bindings[0]["T"] == 3  # the modify occurrence's time stamp

    def test_multiple_instants_produce_multiple_bindings(self, environment):
        context, high, low = environment
        condition = Condition(
            (AtFormula(parse_expression("modify(stock.quantity)"), "S", "T"),)
        )
        bindings = condition.evaluate(context)
        assert len(bindings) == 1

    def test_rejects_set_oriented_expression(self):
        with pytest.raises(ConditionError):
            AtFormula(parse_expression("-create(stock)"), "S", "T")

    def test_time_variable_usable_in_comparisons(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                AtFormula(parse_expression("modify(stock.quantity)"), "S", "T"),
                Comparison(Const(2), "<", ConstLike("T")),
            )
        )
        bindings = condition.evaluate(context)
        assert bindings and all(binding["T"] > 2 for binding in bindings)


def ConstLike(name):
    """Helper: a VarRef without importing it at module top (readability)."""
    from repro.rules.terms import VarRef

    return VarRef(name)


class TestComparison:
    def test_filters_bindings(self, environment):
        context, high, low = environment
        condition = Condition(
            (
                ClassRange("S", "stock"),
                Comparison(AttrRef("S", "quantity"), ">", AttrRef("S", "maxquantity")),
            )
        )
        bindings = condition.evaluate(context)
        assert [binding["S"] for binding in bindings] == [high.oid]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(Const(1), "~", Const(2))

    def test_none_values_drop_the_binding(self, environment):
        context, *_ = environment
        condition = Condition(
            (
                ClassRange("S", "stock"),
                Comparison(AttrRef("S", "missing"), ">", Const(1)),
            )
        )
        assert condition.evaluate(context) == []

    def test_incomparable_values_raise(self, environment):
        context, *_ = environment
        condition = Condition(
            (
                ClassRange("S", "stock"),
                Comparison(AttrRef("S", "quantity"), ">", Const("x")),
            )
        )
        with pytest.raises(ConditionError):
            condition.evaluate(context)

    def test_equality_operators(self, environment):
        context, high, low = environment
        for operator_symbol in ("=", "=="):
            condition = Condition(
                (
                    ClassRange("S", "stock"),
                    Comparison(AttrRef("S", "quantity"), operator_symbol, Const(10)),
                )
            )
            assert [b["S"] for b in condition.evaluate(context)] == [low.oid]


class TestConditionComposition:
    def test_true_condition_yields_one_empty_binding(self, environment):
        context, *_ = environment
        assert TRUE_CONDITION.evaluate(context) == [{}]
        assert TRUE_CONDITION.is_satisfied(context)

    def test_empty_result_short_circuits(self, environment):
        context, *_ = environment
        condition = Condition(
            (
                ClassRange("S", "stock"),
                Comparison(AttrRef("S", "quantity"), ">", Const(10_000)),
                ClassRange("O", "order"),
            )
        )
        assert condition.evaluate(context) == []

    def test_cross_product_of_two_ranges(self, environment):
        context, *_ = environment
        condition = Condition((ClassRange("S", "stock"), ClassRange("O", "order")))
        assert len(condition.evaluate(context)) == 2

    def test_callable_atom_as_filter_and_expander(self, environment):
        context, high, low = environment
        keep_high = CallableAtom(
            lambda binding, ctx: ctx.store.get(binding["S"]).get("quantity") > 100,
            description="quantity > 100",
        )
        condition = Condition((ClassRange("S", "stock"), keep_high))
        assert [b["S"] for b in condition.evaluate(context)] == [high.oid]

        expander = CallableAtom(lambda binding, ctx: [{**binding, "flag": True}])
        condition = Condition((ClassRange("S", "stock"), expander))
        assert all(binding["flag"] for binding in condition.evaluate(context))

    def test_variables_and_event_expressions_are_reported(self):
        condition = Condition(
            (
                ClassRange("S", "stock"),
                OccurredFormula(parse_expression("create(stock)"), "S"),
                Comparison(AttrRef("S", "quantity"), ">", Const(1)),
            )
        )
        assert condition.variables() == {"S"}
        assert len(condition.event_expressions()) == 1

    def test_str_rendering(self):
        condition = Condition(
            (
                ClassRange("S", "stock"),
                Comparison(AttrRef("S", "quantity"), ">", Const(1)),
            )
        )
        assert "stock(S)" in str(condition)
        assert str(TRUE_CONDITION) == "true"
