"""Tests for the Block Executor / rule-processing loop (engine-level behaviour)."""

import pytest

from repro.errors import NonTerminationError
from repro.oodb.database import ChimeraDatabase
from repro.workloads.stock import CHECK_STOCK_QTY_RULE


def make_db(**kwargs) -> ChimeraDatabase:
    db = ChimeraDatabase(**kwargs)
    db.define_class(
        "stock",
        {
            "name": str,
            "quantity": int,
            "minquantity": int,
            "maxquantity": int,
            "onorder": int,
        },
    )
    db.define_class("show", {"quantity": int})
    db.define_class("order", {"amount": int})
    db.define_class("stockOrder", {"item": object, "delquantity": int})
    db.define_class("log", {"entries": int})
    return db


class TestImmediateProcessing:
    def test_paper_rule_clamps_quantity_in_the_same_transaction(self):
        db = make_db()
        db.define_rule(CHECK_STOCK_QTY_RULE)
        with db.transaction() as tx:
            over = tx.create("stock", {"quantity": 140, "maxquantity": 100})
            # The rule ran immediately after the create line: by the time the
            # next line executes the quantity is already clamped.
            assert db.get(over.oid).get("quantity") == 100

    def test_rule_not_executed_when_condition_fails(self):
        db = make_db()
        db.define_rule(CHECK_STOCK_QTY_RULE)
        with db.transaction() as tx:
            ok = tx.create("stock", {"quantity": 50, "maxquantity": 100})
        state = db.rule_state("checkStockQty")
        assert state.times_considered == 1
        assert state.times_executed == 0
        assert db.get(ok.oid).get("quantity") == 50

    def test_set_oriented_execution_processes_all_pending_objects(self):
        db = make_db()
        db.define_rule(CHECK_STOCK_QTY_RULE)
        with db.transaction() as tx:
            created = tx.line(
                lambda ops: [
                    ops.create("stock", {"quantity": 140, "maxquantity": 100}),
                    ops.create("stock", {"quantity": 200, "maxquantity": 100}),
                ]
            )
        # Both objects were created in a single block; one consideration fixes both.
        assert all(db.get(obj.oid).get("quantity") == 100 for obj in created)
        assert db.rule_state("checkStockQty").times_executed == 1

    def test_untargeted_composite_rule(self):
        db = make_db()
        db.define_rule(
            """
            define immediate logOrder
            events create(order) < modify(show.quantity)
            condition show(P)
            action modify(show.quantity, P, 0)
            end
            """
        )
        with db.transaction() as tx:
            shelf = tx.create("show", {"quantity": 9})
            tx.create("order", {"amount": 1})
            assert db.get(shelf.oid).get("quantity") == 9  # sequence not complete yet
            tx.modify(shelf.oid, "quantity", 5)
        assert db.get(shelf.oid).get("quantity") == 0


class TestDeferredProcessing:
    def test_deferred_rule_runs_only_at_commit(self):
        db = make_db()
        db.define_rule(
            """
            define deferred auditQty for stock
            events create
            condition stock(S), occurred(create(stock), S)
            action modify(stock.onorder, S, 1)
            end
            """
        )
        with db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 5, "onorder": 0})
            # Still untouched inside the transaction.
            assert db.get(obj.oid).get("onorder") == 0
        # At commit the deferred rule ran.
        assert db.get(obj.oid).get("onorder") == 1

    def test_deferred_rule_sees_all_transaction_events(self):
        db = make_db()
        db.define_rule(
            """
            define deferred preserving countCreates for stock
            events create
            condition stock(S), occurred(create(stock), S)
            action modify(stock.onorder, S, 1)
            end
            """
        )
        with db.transaction() as tx:
            first = tx.create("stock", {"onorder": 0})
            second = tx.create("stock", {"onorder": 0})
        assert db.get(first.oid).get("onorder") == 1
        assert db.get(second.oid).get("onorder") == 1


class TestCascadingAndTermination:
    def test_rule_triggering_another_rule(self):
        db = make_db()
        db.define_rule(
            """
            define immediate placeOrder for stock
            events create
            condition stock(S), occurred(create(stock), S), S.quantity < S.minquantity
            action create(stockOrder, item = S, delquantity = 0)
            end
            """
        )
        db.define_rule(
            """
            define immediate ackOrder for stockOrder
            events create
            condition stockOrder(O), occurred(create(stockOrder), O)
            action modify(stockOrder.delquantity, O, 1)
            end
            """
        )
        with db.transaction() as tx:
            tx.create("stock", {"quantity": 1, "minquantity": 10})
        orders = db.select("stockOrder")
        assert len(orders) == 1
        assert orders[0].get("delquantity") == 1
        assert db.rule_state("ackOrder").times_executed == 1

    def test_self_triggering_rule_hits_the_execution_budget(self):
        db = make_db(max_rule_executions=25)
        db.define_rule(
            """
            define immediate runaway for log
            events modify(entries)
            condition log(L), occurred(modify(log.entries), L)
            action modify(log.entries, L, L.entries + 1)
            end
            """
        )
        with pytest.raises(NonTerminationError):
            with db.transaction() as tx:
                counter = tx.create("log", {"entries": 0})
                tx.modify(counter.oid, "entries", 1)

    def test_consuming_rule_does_not_reprocess_old_events(self):
        db = make_db()
        db.define_rule(
            """
            define immediate markOnOrder for stock
            events modify(quantity)
            condition stock(S), occurred(modify(stock.quantity), S)
            action modify(stock.onorder, S, S.onorder + 1)
            end
            """
        )
        with db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 5, "onorder": 0})
            tx.modify(obj.oid, "quantity", 6)
            first_count = db.get(obj.oid).get("onorder")
            tx.create("order", {"amount": 1})  # unrelated event; rule must not rerun
            second_count = db.get(obj.oid).get("onorder")
        assert first_count == 1
        assert second_count == 1


class TestPriorities:
    def test_higher_priority_rule_considered_first(self):
        db = make_db()
        db.define_rule(
            """
            define immediate second for stock
            events create
            condition stock(S), occurred(create(stock), S)
            action modify(stock.name, S, 'second')
            priority 1
            end
            """
        )
        db.define_rule(
            """
            define immediate first for stock
            events create
            condition stock(S), occurred(create(stock), S)
            action modify(stock.name, S, 'first')
            priority 9
            end
            """
        )
        with db.transaction() as tx:
            obj = tx.create("stock", {"quantity": 1})
        # Both executed; the lower-priority rule ran last and wins the final write.
        assert db.get(obj.oid).get("name") == "second"
        order = [record.rule_name for record in db.considerations]
        assert order.index("first") < order.index("second")


class TestTransactionIsolationOfRuleState:
    def test_rule_state_resets_between_transactions(self):
        db = make_db()
        db.define_rule(CHECK_STOCK_QTY_RULE)
        with db.transaction() as tx:
            tx.create("stock", {"quantity": 140, "maxquantity": 100})
        first_considerations = db.rule_state("checkStockQty").times_considered
        with db.transaction() as tx:
            tx.create("stock", {"quantity": 150, "maxquantity": 100})
        assert (
            db.rule_state("checkStockQty").times_considered
            == first_considerations + 1
        )
        assert db.count("stock") == 2
