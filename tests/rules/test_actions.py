"""Tests for rule actions and their statements."""

import pytest

from repro.errors import ActionError
from repro.events.clock import TransactionClock
from repro.events.event import Operation
from repro.events.event_base import EventBase
from repro.oodb.objects import ObjectStore
from repro.oodb.operations import OperationExecutor
from repro.oodb.schema import Schema
from repro.rules.actions import (
    Action,
    CallableStatement,
    CreateStatement,
    DeleteStatement,
    ModifyStatement,
    NO_ACTION,
)
from repro.rules.terms import AttrRef, Const, VarRef


@pytest.fixture
def operations() -> OperationExecutor:
    schema = Schema()
    schema.define("stock", {"quantity": int, "maxquantity": int, "onorder": int})
    schema.define("stockOrder", {"item": object, "delquantity": int})
    return OperationExecutor(schema, ObjectStore(), EventBase(), TransactionClock())


@pytest.fixture
def stock_object(operations):
    return operations.create(
        "stock", {"quantity": 150, "maxquantity": 100, "onorder": 0}
    ).object


class TestModifyStatement:
    def test_clamps_quantity_like_the_paper_rule(self, operations, stock_object):
        statement = ModifyStatement(
            "stock", "quantity", VarRef("S"), AttrRef("S", "maxquantity")
        )
        occurrences = statement.execute({"S": stock_object.oid}, operations)
        assert operations.store.get(stock_object.oid).get("quantity") == 100
        assert len(occurrences) == 1
        assert occurrences[0].event_type.operation is Operation.MODIFY

    def test_class_mismatch_rejected(self, operations, stock_object):
        statement = ModifyStatement("stockOrder", "delquantity", VarRef("S"), Const(1))
        with pytest.raises(ActionError):
            statement.execute({"S": stock_object.oid}, operations)

    def test_target_must_be_an_object(self, operations):
        statement = ModifyStatement("stock", "quantity", VarRef("S"), Const(1))
        with pytest.raises(ActionError):
            statement.execute({"S": 42}, operations)

    def test_action_modify_builder(self, operations, stock_object):
        statement = Action.modify("stock.quantity", "S", Const(7))
        statement.execute({"S": stock_object.oid}, operations)
        assert operations.store.get(stock_object.oid).get("quantity") == 7

    def test_action_modify_builder_requires_attribute(self):
        with pytest.raises(ActionError):
            Action.modify("stock", "S", Const(7))


class TestCreateStatement:
    def test_creates_object_with_evaluated_values(self, operations, stock_object):
        statement = CreateStatement(
            "stockOrder", (("item", VarRef("S")), ("delquantity", Const(0)))
        )
        occurrences = statement.execute({"S": stock_object.oid}, operations)
        created = operations.store.objects_of_class("stockOrder")
        assert len(created) == 1
        assert created[0].get("item") == stock_object.oid
        assert occurrences[0].event_type.operation is Operation.CREATE

    def test_bind_as_makes_the_new_oid_available(self, operations, stock_object):
        action = Action(
            (
                CreateStatement(
                    "stockOrder", (("delquantity", Const(0)),), bind_as="N"
                ),
                ModifyStatement("stockOrder", "delquantity", VarRef("N"), Const(5)),
            )
        )
        action.execute([{"S": stock_object.oid}], operations)
        created = operations.store.objects_of_class("stockOrder")[0]
        assert created.get("delquantity") == 5


class TestDeleteStatement:
    def test_deletes_bound_object(self, operations, stock_object):
        statement = DeleteStatement(VarRef("S"))
        occurrences = statement.execute({"S": stock_object.oid}, operations)
        assert not operations.store.exists(stock_object.oid)
        assert occurrences[0].event_type.operation is Operation.DELETE

    def test_double_delete_is_a_noop(self, operations, stock_object):
        statement = DeleteStatement(VarRef("S"))
        statement.execute({"S": stock_object.oid}, operations)
        assert statement.execute({"S": stock_object.oid}, operations) == []


class TestActionComposition:
    def test_action_runs_once_per_binding(self, operations):
        first = operations.create("stock", {"quantity": 150, "maxquantity": 100}).object
        second = operations.create(
            "stock", {"quantity": 130, "maxquantity": 100}
        ).object
        action = Action(
            (
                ModifyStatement(
                    "stock", "quantity", VarRef("S"), AttrRef("S", "maxquantity")
                ),
            )
        )
        occurrences = action.execute([{"S": first.oid}, {"S": second.oid}], operations)
        assert operations.store.get(first.oid).get("quantity") == 100
        assert operations.store.get(second.oid).get("quantity") == 100
        assert len(occurrences) == 2

    def test_no_action_produces_nothing(self, operations, stock_object):
        assert NO_ACTION.execute([{"S": stock_object.oid}], operations) == []

    def test_callable_statement(self, operations, stock_object):
        def body(binding, ops):
            return ops.modify(binding["S"], "onorder", 1).occurrences

        action = Action.from_callable(body, "flag onorder")
        occurrences = action.execute([{"S": stock_object.oid}], operations)
        assert operations.store.get(stock_object.oid).get("onorder") == 1
        assert len(occurrences) == 1

    def test_callable_statement_returning_none(self, operations, stock_object):
        statement = CallableStatement(lambda binding, ops: None)
        assert statement.execute({"S": stock_object.oid}, operations) == []

    def test_str_rendering(self, operations):
        action = Action(
            (
                ModifyStatement("stock", "quantity", VarRef("S"), Const(1)),
                DeleteStatement(VarRef("S")),
            )
        )
        text = str(action)
        assert "modify(stock.quantity, S, 1)" in text
        assert "delete(S)" in text
        assert str(NO_ACTION) == "skip"
