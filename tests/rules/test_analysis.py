"""Tests for the rule-set static analysis (triggering graph, termination)."""


from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation
from repro.rules.actions import (
    Action,
    CallableStatement,
    CreateStatement,
    DeleteStatement,
    ModifyStatement,
    NO_ACTION,
)
from repro.rules.analysis import (
    action_event_types,
    analyze_rules,
    can_trigger,
    positive_trigger_types,
)
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.language import parse_rule
from repro.rules.rule import Rule
from repro.rules.terms import Const, VarRef
from repro.workloads.stock import CHECK_STOCK_QTY_RULE, REORDER_RULE, SHELF_REFILL_RULE


def rule(name: str, events: str, action: Action = NO_ACTION) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(events),
        condition=TRUE_CONDITION,
        action=action,
    )


MODIFY_QTY_ACTION = Action(
    (ModifyStatement("stock", "quantity", VarRef("S"), Const(0)),)
)
CREATE_ORDER_ACTION = Action(
    (CreateStatement("stockOrder", (("delquantity", Const(0)),)),)
)


class TestActionEventTypes:
    def test_modify_and_create_statements(self):
        generated = action_event_types(
            Action(
                (
                    ModifyStatement("stock", "quantity", VarRef("S"), Const(0)),
                    CreateStatement("stockOrder", ()),
                )
            )
        )
        assert EventType(Operation.MODIFY, "stock", "quantity") in generated
        assert EventType(Operation.CREATE, "stockOrder") in generated

    def test_delete_statement_is_class_agnostic(self):
        generated = action_event_types(Action((DeleteStatement(VarRef("S")),)))
        assert any(et.operation is Operation.DELETE for et in generated)

    def test_callable_statement_generates_nothing_statically(self):
        generated = action_event_types(
            Action((CallableStatement(lambda binding, ops: None),))
        )
        assert generated == set()

    def test_empty_action(self):
        assert action_event_types(NO_ACTION) == set()


class TestPositiveTriggerTypes:
    def test_plain_events(self):
        r = rule("r", "create(stock) , modify(stock.quantity)")
        assert positive_trigger_types(r) == {
            EventType(Operation.CREATE, "stock"),
            EventType(Operation.MODIFY, "stock", "quantity"),
        }

    def test_negated_events_are_excluded(self):
        r = rule("r", "create(stock) + -create(order)")
        assert positive_trigger_types(r) == {EventType(Operation.CREATE, "stock")}


class TestCanTrigger:
    def test_action_feeding_another_rule(self):
        source = rule("source", "create(stock)", CREATE_ORDER_ACTION)
        target = rule("target", "create(stockOrder)")
        assert can_trigger(source, target)

    def test_unrelated_rules_do_not_trigger(self):
        source = rule("source", "create(stock)", MODIFY_QTY_ACTION)
        target = rule("target", "create(stockOrder)")
        assert not can_trigger(source, target)

    def test_rule_with_no_action_triggers_nothing(self):
        source = rule("source", "create(stock)")
        target = rule("target", "create(stock)")
        assert not can_trigger(source, target)

    def test_self_triggering_rule(self):
        looping = rule("loop", "modify(stock.quantity)", MODIFY_QTY_ACTION)
        assert can_trigger(looping, looping)

    def test_vacuously_activatable_target_is_triggered_by_anything(self):
        source = rule("source", "create(stock)", MODIFY_QTY_ACTION)
        watchdog = rule("watchdog", "-create(order)")
        assert can_trigger(source, watchdog)

    def test_class_level_modify_matches_attribute_level_subscription(self):
        source = rule("source", "create(stock)", MODIFY_QTY_ACTION)
        target = rule("target", "modify(stock)")
        assert can_trigger(source, target)


class TestTriggeringGraph:
    def build(self) -> list[Rule]:
        return [
            rule("creator", "create(stock)", CREATE_ORDER_ACTION),
            rule("acknowledger", "create(stockOrder)", MODIFY_QTY_ACTION),
            rule("monitor", "modify(stock.quantity)"),
        ]

    def test_edges(self):
        graph = analyze_rules(self.build())
        assert graph.successors("creator") == {"acknowledger"}
        assert graph.successors("acknowledger") == {"monitor"}
        assert graph.successors("monitor") == set()
        assert graph.predecessors("monitor") == {"acknowledger"}

    def test_edge_via_event_types(self):
        graph = analyze_rules(self.build())
        edge = next(edge for edge in graph.edges if edge.source == "creator")
        assert any(event_type.class_name == "stockOrder" for event_type in edge.via)

    def test_acyclic_graph_terminates(self):
        graph = analyze_rules(self.build())
        assert graph.is_acyclic()
        assert graph.guaranteed_to_terminate()
        assert graph.cycles() == []

    def test_stratification(self):
        graph = analyze_rules(self.build())
        strata = graph.stratification()
        assert strata == [["creator"], ["acknowledger"], ["monitor"]]

    def test_reachability(self):
        graph = analyze_rules(self.build())
        assert graph.reachable_from("creator") == {"acknowledger", "monitor"}
        assert graph.reachable_from("monitor") == set()

    def test_cycle_detection(self):
        ping = rule("ping", "modify(stock.quantity)", MODIFY_QTY_ACTION)
        graph = analyze_rules([ping])
        assert not graph.is_acyclic()
        assert graph.cycles() == [["ping"]]
        assert graph.stratification() is None

    def test_two_rule_cycle(self):
        a = rule(
            "a",
            "create(stockOrder)",
            Action((ModifyStatement("stock", "quantity", VarRef("S"), Const(0)),)),
        )
        b = rule("b", "modify(stock.quantity)", CREATE_ORDER_ACTION)
        graph = analyze_rules([a, b])
        assert not graph.is_acyclic()
        assert ["a", "b"] in graph.cycles()

    def test_opaque_actions_flagged(self):
        opaque = Rule(
            name="opaque",
            events=parse_expression("create(stock)"),
            condition=TRUE_CONDITION,
            action=Action((CallableStatement(lambda binding, ops: None),)),
        )
        graph = analyze_rules([opaque])
        assert graph.has_opaque_actions
        assert not graph.guaranteed_to_terminate()

    def test_networkx_export(self):
        graph = analyze_rules(self.build())
        exported = graph.to_networkx()
        assert set(exported.nodes) == {"creator", "acknowledger", "monitor"}
        assert exported.has_edge("creator", "acknowledger")

    def test_describe_mentions_cycles_or_termination(self):
        acyclic = analyze_rules(self.build())
        assert "terminates" in acyclic.describe()
        looping = analyze_rules(
            [rule("loop", "modify(stock.quantity)", MODIFY_QTY_ACTION)]
        )
        assert "cycles:" in looping.describe()


class TestPaperRuleSet:
    def test_stock_rule_set_triggering_graph(self):
        rules = [
            parse_rule(text)
            for text in (CHECK_STOCK_QTY_RULE, REORDER_RULE, SHELF_REFILL_RULE)
        ]
        graph = analyze_rules(rules)
        # checkStockQty clamps stock.quantity, which is exactly what
        # reorderStock's instance precedence waits for.
        assert "reorderStock" in graph.successors("checkStockQty")
        # shelfRefill rewrites show.quantity, its own triggering event: the
        # static analysis conservatively reports a self-loop (at run time the
        # condition P.quantity < 5 makes it quiesce after one execution).
        assert ["shelfRefill"] in graph.cycles()
        assert not graph.guaranteed_to_terminate()
        # reorderStock only creates stockOrder objects and touches
        # stock.onorder; neither can activate the other rules.
        assert graph.successors("reorderStock") == set()
