"""Rules reacting to external / temporal events (extension integration)."""

from repro.oodb.database import ChimeraDatabase


def make_db() -> ChimeraDatabase:
    db = ChimeraDatabase()
    db.define_class("stock", {"name": str, "quantity": int, "onorder": int})
    return db


class TestExternalEventRules:
    def test_rule_triggered_by_external_event(self):
        db = make_db()
        db.define_rule(
            """
            define immediate nightlyReset
            events raise(endOfDay)
            condition stock(S)
            action modify(stock.onorder, S, 0)
            end
            """
        )
        with db.transaction() as tx:
            item = tx.create("stock", {"quantity": 5, "onorder": 3})
            assert db.get(item.oid).get("onorder") == 3
            db.raise_event(tx, "endOfDay")
            assert db.get(item.oid).get("onorder") == 0

    def test_composite_of_internal_and_external_events(self):
        db = make_db()
        db.define_rule(
            """
            define deferred unansweredDeadline
            events create(stock) < raise(deadline)
            condition stock(S), occurred(create(stock), S)
            action modify(stock.onorder, S, 1)
            end
            """
        )
        with db.transaction() as tx:
            item = tx.create("stock", {"quantity": 5, "onorder": 0})
            db.raise_event(tx, "deadline")
        assert db.get(item.oid).get("onorder") == 1

    def test_external_event_alone_does_not_satisfy_the_sequence(self):
        db = make_db()
        db.define_rule(
            """
            define deferred unansweredDeadline
            events create(stock) < raise(deadline)
            condition stock(S)
            action modify(stock.onorder, S, 1)
            end
            """
        )
        with db.transaction() as tx:
            db.raise_event(tx, "deadline")
            item = tx.create("stock", {"quantity": 5, "onorder": 0})
        # The deadline fired before the creation: the precedence never held.
        assert db.get(item.oid).get("onorder") == 0

    def test_external_event_payload_reaches_the_event_base(self):
        db = make_db()
        with db.transaction() as tx:
            occurrence = db.raise_event(
                tx, "alarm", subject="sensor-7", payload={"level": 2}
            )
            assert occurrence.payload["level"] == 2
            assert occurrence.oid == "sensor-7"
            assert str(occurrence.event_type) == "raise(alarm)"
