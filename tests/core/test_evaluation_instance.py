"""Instance-oriented ``ots`` semantics and lifting (paper §3.2 worked examples)."""

import pytest

from repro.core.evaluation import EvaluationMode, active_objects, evaluate, ots, ts
from repro.core.parser import parse_expression
from repro.errors import EvaluationError
from repro.events.event import EventType, Operation
from repro.events.event_base import EventWindow

from tests.conftest import history

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
MODIFY_MIN = EventType(Operation.MODIFY, "stock", "minquantity")
MODIFY_SHOW = EventType(Operation.MODIFY, "show", "quantity")

BOTH_MODES = [EvaluationMode.LOGICAL, EvaluationMode.ALGEBRAIC]


class TestPrimitivePerObject:
    """§3.2: create(stock) on o1 at t1 and on o2 at t2."""

    window = history((CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2))
    expression = parse_expression("create(stock)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_active_only_for_affected_object(self, mode):
        assert ots(self.expression, self.window, 1, "o1", mode) == 1
        assert ots(self.expression, self.window, 1, "o2", mode) == -1

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_each_object_keeps_its_own_timestamp(self, mode):
        assert ots(self.expression, self.window, 5, "o1", mode) == 1
        assert ots(self.expression, self.window, 5, "o2", mode) == 2

    def test_unknown_object_is_inactive(self):
        assert ots(self.expression, self.window, 5, "o9") == -5

    def test_requires_positive_instant(self):
        with pytest.raises(EvaluationError):
            ots(self.expression, self.window, 0, "o1")

    def test_set_oriented_operator_rejected(self):
        with pytest.raises(EvaluationError):
            ots(parse_expression("create(stock) + delete(stock)"), self.window, 3, "o1")


class TestInstanceConjunction:
    """create(stock) += modify(stock.quantity): both on the same object."""

    expression = parse_expression("create(stock) += modify(stock.quantity)")

    def test_active_only_when_both_hit_same_object(self):
        window = history(
            (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2), (MODIFY_QTY, "o1", 3)
        )
        assert ots(self.expression, window, 5, "o1") == 3
        assert ots(self.expression, window, 5, "o2") == -5

    def test_cross_object_combination_is_not_enough(self):
        window = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o2", 3))
        assert ots(self.expression, window, 5, "o1") == -5
        assert ots(self.expression, window, 5, "o2") == -5
        # ... but the set-oriented conjunction is active in the same history.
        set_conjunction = parse_expression("create(stock) + modify(stock.quantity)")
        assert ts(set_conjunction, window, 5) == 3

    def test_lifted_value_is_positive_iff_some_object_satisfies(self):
        same_object = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 3))
        cross_object = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o2", 3))
        assert ts(self.expression, same_object, 5) == 3
        assert ts(self.expression, cross_object, 5) == -5


class TestInstanceDisjunctionTimeline:
    """§3.2 disjunction example with three objects."""

    window = history(
        (CREATE_STOCK, "o1", 1),
        (CREATE_STOCK, "o2", 2),
        (MODIFY_QTY, "o1", 3),
        (MODIFY_QTY, "o3", 3),
    )
    expression = parse_expression("create(stock) ,= modify(stock.quantity)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_per_object_activation(self, mode):
        assert ots(self.expression, self.window, 1, "o1", mode) == 1
        assert ots(self.expression, self.window, 2, "o2", mode) == 2
        assert ots(self.expression, self.window, 2, "o3", mode) == -2
        assert ots(self.expression, self.window, 3, "o1", mode) == 3
        assert ots(self.expression, self.window, 3, "o3", mode) == 3

    def test_elementary_instance_disjunction_equals_set_disjunction(self):
        # The paper notes the two coincide when the operands are elementary.
        set_disjunction = parse_expression("create(stock) , modify(stock.quantity)")
        for instant in range(1, 6):
            assert ts(self.expression, self.window, instant) == ts(
                set_disjunction, self.window, instant
            )


class TestInstanceNegation:
    """§3.2 negation example: -=create(stock) per object."""

    expression = parse_expression("-=create(stock)")

    def test_per_object_negation(self):
        window = history((CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 4))
        assert ots(self.expression, window, 2, "o1") == -1
        assert ots(self.expression, window, 2, "o2") == 2
        assert ots(self.expression, window, 5, "o2") == -4

    def test_elementary_instance_negation_lifts_like_set_negation(self):
        window = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o2", 2))
        set_negation = parse_expression("-create(stock)")
        for instant in range(1, 5):
            assert ts(self.expression, window, instant) == ts(
                set_negation, window, instant
            )

    def test_negated_instance_conjunction_vs_pair_of_negations(self):
        """The paper's §3.2 pair of 'no stock created and modified' examples."""
        cross_object = history(
            (MODIFY_SHOW, "p1", 5), (CREATE_STOCK, "o1", 2), (MODIFY_QTY, "o2", 3)
        )
        negated_conjunction = parse_expression(
            "modify(show.quantity) + -=(create(stock) += modify(stock.quantity))"
        )
        separate_negations = parse_expression(
            "modify(show.quantity) + -create(stock) + -modify(stock.quantity)"
        )
        # No single object was both created and modified: the first formula holds.
        assert ts(negated_conjunction, cross_object, 6) > 0
        # But some object was created and some object was modified: the second fails.
        assert ts(separate_negations, cross_object, 6) < 0

        same_object = history(
            (MODIFY_SHOW, "p1", 5), (CREATE_STOCK, "o1", 2), (MODIFY_QTY, "o1", 3)
        )
        assert ts(negated_conjunction, same_object, 6) < 0
        assert ts(separate_negations, same_object, 6) < 0


class TestInstancePrecedence:
    """§3.2 precedence example: modify(minquantity) <= modify(quantity) on o1."""

    window = history(
        (MODIFY_MIN, "o1", 1), (MODIFY_MIN, "o1", 2), (MODIFY_QTY, "o1", 3)
    )
    expression = parse_expression("modify(stock.minquantity) <= modify(stock.quantity)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_timeline(self, mode):
        assert ots(self.expression, self.window, 1, "o1", mode) == -1
        assert ots(self.expression, self.window, 2, "o1", mode) == -2
        assert ots(self.expression, self.window, 3, "o1", mode) == 3
        assert ots(self.expression, self.window, 9, "o1", mode) == 3

    def test_requires_same_object(self):
        cross = history((MODIFY_MIN, "o1", 1), (MODIFY_QTY, "o2", 3))
        assert ots(self.expression, cross, 5, "o1") == -5
        assert ots(self.expression, cross, 5, "o2") == -5
        assert ts(self.expression, cross, 5) == -5

    def test_set_level_use_inside_conjunction(self):
        """§3.2: shelf change + at least one stock created then modified."""
        expression = parse_expression(
            "modify(show.quantity) + (create(stock) <= modify(stock.quantity))"
        )
        satisfying = history(
            (MODIFY_SHOW, "p1", 1), (CREATE_STOCK, "o1", 2), (MODIFY_QTY, "o1", 3)
        )
        cross_object = history(
            (MODIFY_SHOW, "p1", 1), (CREATE_STOCK, "o1", 2), (MODIFY_QTY, "o2", 3)
        )
        assert ts(expression, satisfying, 4) > 0
        assert ts(expression, cross_object, 4) < 0
        # The set-oriented variant accepts the cross-object history.
        set_variant = parse_expression(
            "modify(show.quantity) + (create(stock) < modify(stock.quantity))"
        )
        assert ts(set_variant, cross_object, 4) > 0


class TestLiftingEdgeCases:
    def test_existential_lift_over_empty_window_is_inactive(self):
        window = EventWindow.of([])
        expression = parse_expression("create(stock) += modify(stock.quantity)")
        assert ts(expression, window, 5) == -5

    def test_negation_lift_over_empty_window_is_active(self):
        window = EventWindow.of([])
        expression = parse_expression("-=create(stock)")
        assert ts(expression, window, 5) == 5

    def test_ots_never_exceeds_ts(self):
        window = history(
            (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 4), (MODIFY_QTY, "o1", 6)
        )
        expression = parse_expression("create(stock)")
        for oid in ("o1", "o2"):
            assert ots(expression, window, 8, oid) <= ts(expression, window, 8)

    def test_evaluate_wrapper_with_oid(self):
        window = history((CREATE_STOCK, "o1", 2))
        value = evaluate(parse_expression("create(stock)"), window, 5, oid="o1")
        assert value.is_active and value.activation_timestamp == 2


class TestActiveObjects:
    def test_active_objects_for_instance_conjunction(self):
        window = history(
            (CREATE_STOCK, "o1", 1),
            (CREATE_STOCK, "o2", 2),
            (MODIFY_QTY, "o1", 3),
            (MODIFY_QTY, "o3", 4),
        )
        expression = parse_expression("create(stock) += modify(stock.quantity)")
        assert active_objects(expression, window, 5) == {"o1"}

    def test_active_objects_with_candidate_restriction(self):
        window = history((CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2))
        expression = parse_expression("create(stock)")
        assert active_objects(expression, window, 5, candidates=["o2", "o9"]) == {"o2"}

    def test_active_objects_rejects_set_expressions(self):
        window = history((CREATE_STOCK, "o1", 1))
        with pytest.raises(EvaluationError):
            active_objects(parse_expression("create(stock) + delete(stock)"), window, 3)
