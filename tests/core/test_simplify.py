"""Tests for the exact expression simplifier."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.evaluation import ts
from repro.core.expressions import (
    InstanceConjunction,
    InstanceNegation,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.parser import parse_expression
from repro.core.simplify import simplification_report, simplify_expression

from tests.conftest import A, B, C, PA, PB, history
from tests.core.test_properties import histories, set_expressions


WINDOW = history((A, "o1", 2), (B, "o2", 4), (A, "o2", 6), (C, "o1", 7))
INSTANTS = list(range(1, 10))


def assert_exactly_equivalent(original, simplified):
    for instant in INSTANTS:
        assert ts(original, WINDOW, instant) == ts(simplified, WINDOW, instant)


class TestRewrites:
    def test_primitive_unchanged(self):
        assert simplify_expression(PA) == PA

    def test_double_negation(self):
        assert simplify_expression(SetNegation(SetNegation(PA))) == PA

    def test_instance_double_negation_is_not_collapsed(self):
        # -=-=A lifts universally over the affected objects while A lifts
        # existentially, so collapsing it would not be set-level exact.
        expression = InstanceNegation(InstanceNegation(PA))
        assert simplify_expression(expression) == expression

    def test_quadruple_negation(self):
        expression = SetNegation(SetNegation(SetNegation(SetNegation(PA))))
        assert simplify_expression(expression) == PA

    def test_mixed_granularity_negations_are_not_collapsed(self):
        expression = SetNegation(InstanceNegation(PA))
        assert simplify_expression(expression) == expression

    def test_conjunction_idempotence(self):
        assert simplify_expression(SetConjunction(PA, PA)) == PA

    def test_disjunction_idempotence_modulo_commutativity(self):
        expression = SetDisjunction(SetDisjunction(PA, PB), SetDisjunction(PB, PA))
        simplified = simplify_expression(expression)
        assert simplified.size() == 3
        assert simplified.event_types() == {A, B}

    def test_chain_deduplication_and_canonical_order(self):
        left_heavy = parse_expression("create(A) + create(B) + create(A) + create(C)")
        right_heavy = parse_expression(
            "create(C) + (create(B) + (create(C) + create(A)))"
        )
        assert simplify_expression(left_heavy) == simplify_expression(right_heavy)

    def test_instance_chain_deduplication(self):
        expression = InstanceConjunction(InstanceConjunction(PA, PB), PA)
        assert simplify_expression(expression).size() == 3

    def test_precedence_not_rewritten(self):
        expression = SetPrecedence(PA, PA)
        assert simplify_expression(expression) == expression

    def test_nested_double_negation_inside_chain(self):
        expression = SetConjunction(SetNegation(SetNegation(PA)), PA)
        assert simplify_expression(expression) == PA

    def test_simplification_is_idempotent(self):
        expression = parse_expression(
            "--create(A) + (create(B) + create(B)) , (create(A) , create(A))"
        )
        once = simplify_expression(expression)
        assert simplify_expression(once) == once


class TestEquivalence:
    def test_examples_remain_exactly_equivalent(self):
        texts = [
            "--create(A)",
            "create(A) + create(A)",
            "create(A) , create(A) , create(B)",
            "(create(A) + create(B)) + (create(B) + create(A))",
            "-(create(A) , create(A)) + create(C)",
            "create(A) < (create(B) + create(B))",
        ]
        for text in texts:
            original = parse_expression(text)
            assert_exactly_equivalent(original, simplify_expression(original))

    def test_report_counts_removed_nodes(self):
        report = simplification_report(parse_expression("create(A) + create(A)"))
        assert report["nodes_removed"] == 2
        assert report["changed"] is True
        report = simplification_report(PA)
        assert report["changed"] is False


class TestSimplifyProperties:
    @settings(max_examples=100, deadline=None)
    @given(expression=set_expressions, window=histories(), instant=st.integers(1, 30))
    def test_simplification_preserves_ts_exactly(self, expression, window, instant):
        simplified = simplify_expression(expression)
        assert ts(expression, window, instant) == ts(simplified, window, instant)

    @settings(max_examples=100, deadline=None)
    @given(expression=set_expressions)
    def test_simplification_never_grows_the_expression(self, expression):
        assert simplify_expression(expression).size() <= expression.size()

    @settings(max_examples=60, deadline=None)
    @given(expression=set_expressions)
    def test_simplification_is_idempotent_property(self, expression):
        once = simplify_expression(expression)
        assert simplify_expression(once) == once
