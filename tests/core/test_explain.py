"""Tests for the activation-explanation facility."""

from repro.core.evaluation import ts
from repro.core.explain import explain
from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation

from tests.conftest import history

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
CREATE_ORDER = EventType(Operation.CREATE, "order")

WINDOW = history(
    (CREATE_STOCK, "o1", 1),
    (CREATE_STOCK, "o2", 2),
    (MODIFY_QTY, "o1", 4),
    (CREATE_ORDER, "o9", 6),
)


class TestPrimitiveExplanations:
    def test_active_primitive_names_its_supporting_occurrence(self):
        explanation = explain(parse_expression("create(stock)"), WINDOW, 5)
        assert explanation.active
        assert explanation.activation_timestamp == 2
        assert explanation.supporting_occurrence is not None
        assert explanation.supporting_occurrence.timestamp == 2

    def test_inactive_primitive_has_no_support(self):
        explanation = explain(parse_expression("delete(stock)"), WINDOW, 5)
        assert not explanation.active
        assert explanation.supporting_occurrence is None

    def test_instance_level_explanation(self):
        explanation = explain(parse_expression("create(stock)"), WINDOW, 5, oid="o1")
        assert explanation.active
        assert explanation.supporting_occurrence.oid == "o1"


class TestCompositeExplanations:
    def test_explanation_value_matches_ts(self):
        for text in (
            "create(stock) + modify(stock.quantity)",
            "create(stock) < modify(stock.quantity)",
            "create(stock) + -create(order)",
            "modify(stock.quantity) , delete(stock)",
        ):
            expression = parse_expression(text)
            for instant in (1, 3, 5, 7):
                explanation = explain(expression, WINDOW, instant)
                assert explanation.value == ts(expression, WINDOW, instant), (
                    text, instant
                )

    def test_children_follow_the_expression_structure(self):
        explanation = explain(
            parse_expression("create(stock) + modify(stock.quantity)"), WINDOW, 5
        )
        assert len(explanation.children) == 2
        assert all(child.active for child in explanation.children)
        assert len(explanation.supporting_occurrences()) == 2

    def test_negation_reports_the_blocking_occurrence(self):
        explanation = explain(parse_expression("-create(order)"), WINDOW, 7)
        assert not explanation.active
        assert explanation.blocking_occurrence is not None
        assert explanation.blocking_occurrence.event_type == CREATE_ORDER

    def test_precedence_probes_left_operand_at_right_activation(self):
        explanation = explain(
            parse_expression("create(stock) < modify(stock.quantity)"), WINDOW, 7
        )
        left, right = explanation.children
        assert right.activation_timestamp == 4
        assert left.instant == 4  # probed at the modify's activation instant

    def test_lifted_instance_expression_records_the_witness_object(self):
        explanation = explain(
            parse_expression("create(stock) += modify(stock.quantity)"), WINDOW, 7
        )
        assert explanation.active
        assert explanation.witness_object == "o1"
        assert explanation.role == "lifted"

    def test_lifted_negation_records_the_deciding_object(self):
        explanation = explain(parse_expression("-=create(stock)"), WINDOW, 7)
        assert not explanation.active
        assert explanation.witness_object in {"o1", "o2"}

    def test_leaves_cover_every_primitive(self):
        explanation = explain(
            parse_expression("(create(stock) , delete(stock)) + -create(order)"),
            WINDOW,
            5,
        )
        assert len(explanation.leaves()) == 3


class TestRendering:
    def test_render_is_indented_and_mentions_status(self):
        explanation = explain(
            parse_expression("create(stock) + -create(order)"), WINDOW, 5
        )
        text = explanation.render()
        lines = text.splitlines()
        assert lines[0].startswith("create(stock) + -create(order)")
        assert any(line.startswith("  ") for line in lines[1:])
        assert "active@t" in text
        assert str(explanation) == text
