"""Tests for the event-expression AST (operators, priorities, restrictions)."""

import pytest

from repro.core.expressions import (
    OPERATOR_TABLE,
    Dimension,
    Granularity,
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
    conjunction,
    disjunction,
    instance_conjunction,
    negation,
    precedence,
)
from repro.errors import CompositionError

from tests.conftest import A, B, PA, PB, PC


class TestPrimitive:
    def test_from_event_type(self):
        assert Primitive(A).event_type == A

    def test_from_text(self):
        assert Primitive("create(stock)").event_type.class_name == "stock"

    def test_rejects_non_event_types(self):
        with pytest.raises(CompositionError):
            Primitive(42)  # type: ignore[arg-type]

    def test_str_matches_event_type(self):
        assert str(PA) == "create(A)"

    def test_no_children(self):
        assert PA.children() == ()
        assert PA.depth() == 1
        assert PA.size() == 1


class TestConstruction:
    def test_operator_overloads(self):
        assert isinstance(PA + PB, SetConjunction)
        assert isinstance(PA | PB, SetDisjunction)
        assert isinstance(-PA, SetNegation)
        assert isinstance(PA >> PB, SetPrecedence)
        assert isinstance(PA.then(PB), SetPrecedence)

    def test_instance_builders(self):
        assert isinstance(PA.iconj(PB), InstanceConjunction)
        assert isinstance(PA.idisj(PB), InstanceDisjunction)
        assert isinstance(PA.ineg(), InstanceNegation)
        assert isinstance(PA.iprec(PB), InstancePrecedence)

    def test_operands_coerced_from_strings(self):
        expression = SetConjunction("create(stock)", "delete(stock)")
        assert {et.class_name for et in expression.event_types()} == {"stock"}

    def test_nary_helpers_fold_left(self):
        expression = conjunction(PA, PB, PC)
        assert isinstance(expression, SetConjunction)
        assert isinstance(expression.left, SetConjunction)
        assert expression.right == PC

    def test_nary_helpers_single_operand(self):
        assert conjunction(PA) == PA
        assert disjunction(PB) == PB

    def test_nary_helpers_require_operands(self):
        with pytest.raises(CompositionError):
            conjunction()

    def test_precedence_helper(self):
        expression = precedence(PA, PB, PC)
        assert isinstance(expression, SetPrecedence)
        assert isinstance(expression.left, SetPrecedence)

    def test_negation_helper(self):
        assert negation(PA) == SetNegation(PA)


class TestStructuralEquality:
    def test_equal_trees_are_equal(self):
        assert PA + PB == SetConjunction(PA, PB)
        assert hash(PA + PB) == hash(SetConjunction(PA, PB))

    def test_operand_order_matters(self):
        assert PA + PB != PB + PA

    def test_set_and_instance_variants_differ(self):
        assert SetConjunction(PA, PB) != InstanceConjunction(PA, PB)

    def test_usable_in_sets(self):
        expressions = {PA + PB, SetConjunction(PA, PB), PA | PB}
        assert len(expressions) == 2


class TestGranularityRestriction:
    """Instance operators cannot contain set-oriented sub-expressions (§3.2)."""

    def test_instance_over_primitives_is_allowed(self):
        InstanceConjunction(PA, PB)
        InstanceNegation(PA)

    def test_instance_over_instance_is_allowed(self):
        InstancePrecedence(InstanceConjunction(PA, PB), PC)

    def test_instance_over_set_conjunction_rejected(self):
        with pytest.raises(CompositionError):
            InstanceConjunction(SetConjunction(PA, PB), PC)

    def test_instance_negation_over_set_rejected(self):
        with pytest.raises(CompositionError):
            InstanceNegation(SetDisjunction(PA, PB))

    def test_set_over_instance_is_allowed(self):
        expression = SetConjunction(InstanceConjunction(PA, PB), PC)
        assert expression.contains_set_operator()

    def test_may_be_instance_operand(self):
        assert PA.may_be_instance_operand()
        assert instance_conjunction(PA, PB).may_be_instance_operand()
        assert not (PA + PB).may_be_instance_operand()


class TestTreeInspection:
    def test_walk_is_preorder(self):
        expression = SetConjunction(SetNegation(PA), PB)
        kinds = [type(node).__name__ for node in expression.walk()]
        assert kinds == ["SetConjunction", "SetNegation", "Primitive", "Primitive"]

    def test_primitives_and_event_types(self):
        expression = SetDisjunction(PA, SetConjunction(PA, PB))
        assert len(list(expression.primitives())) == 3
        assert expression.event_types() == {A, B}

    def test_size_and_depth(self):
        expression = SetConjunction(SetNegation(PA), SetDisjunction(PB, PC))
        assert expression.size() == 6
        assert expression.depth() == 3

    def test_granularity_flags(self):
        assert PA.granularity is Granularity.SET
        assert InstanceConjunction(PA, PB).is_instance_oriented
        assert not SetConjunction(PA, PB).is_instance_oriented


class TestOperatorTable:
    """The operator inventory reproduces Fig. 1 and Fig. 2."""

    def test_four_operators(self):
        assert [info.name for info in OPERATOR_TABLE] == [
            "negation",
            "conjunction",
            "precedence",
            "disjunction",
        ]

    def test_priorities_decrease(self):
        priorities = [info.priority for info in OPERATOR_TABLE]
        assert priorities == sorted(priorities, reverse=True)
        negation_priority, conjunction_priority, precedence_priority, disjunction_priority = priorities
        assert conjunction_priority == precedence_priority
        assert negation_priority > conjunction_priority > disjunction_priority

    def test_instance_symbols_add_equal_sign(self):
        for info in OPERATOR_TABLE:
            assert info.instance_symbol == info.set_symbol + "="

    def test_dimensions(self):
        by_name = {info.name: info.dimension for info in OPERATOR_TABLE}
        assert by_name["precedence"] is Dimension.TEMPORAL
        assert by_name["negation"] is Dimension.BOOLEAN
        assert by_name["conjunction"] is Dimension.BOOLEAN
        assert by_name["disjunction"] is Dimension.BOOLEAN
