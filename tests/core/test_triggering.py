"""The triggering predicate T(r, t) of paper §4.5."""

from repro.core.parser import parse_expression
from repro.core.triggering import is_triggered, is_triggered_now, triggering_window
from repro.events.event import EventType, Operation

from tests.conftest import event_base_from

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
CREATE_ORDER = EventType(Operation.CREATE, "order")


class TestWindowConstruction:
    def test_window_excludes_already_considered_occurrences(self):
        eb = event_base_from((CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 5))
        window = triggering_window(eb, last_consideration=1, now=10)
        assert [occurrence.timestamp for occurrence in window] == [5]

    def test_window_with_no_prior_consideration(self):
        eb = event_base_from((CREATE_STOCK, "o1", 1))
        window = triggering_window(eb, last_consideration=None, now=10)
        assert len(window) == 1


class TestEmptyWindowRule:
    """R = {} means the rule cannot trigger, even for negation expressions."""

    def test_no_new_events_means_no_triggering(self):
        eb = event_base_from((CREATE_STOCK, "o1", 1))
        expression = parse_expression("-create(order)")
        decision = is_triggered(expression, eb, last_consideration=1, now=10)
        assert not decision
        assert decision.window_size == 0

    def test_negation_rule_triggers_once_something_happens(self):
        eb = event_base_from((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 4))
        expression = parse_expression("-create(order)")
        decision = is_triggered(expression, eb, last_consideration=1, now=10)
        assert decision.triggered
        assert decision.ts_value > 0

    def test_empty_event_base(self):
        eb = event_base_from()
        decision = is_triggered(parse_expression("create(stock)"), eb, None, 5)
        assert not decision.triggered
        assert decision.window_size == 0


class TestBasicTriggering:
    def test_simple_event_triggers(self):
        eb = event_base_from((CREATE_STOCK, "o1", 3))
        decision = is_triggered(parse_expression("create(stock)"), eb, None, 5)
        assert decision.triggered
        assert decision.ts_value == 3

    def test_not_triggered_by_other_events(self):
        eb = event_base_from((CREATE_ORDER, "o3", 3))
        decision = is_triggered(parse_expression("create(stock)"), eb, None, 5)
        assert not decision.triggered

    def test_composite_conjunction_triggers_only_when_complete(self):
        expression = parse_expression("create(stock) + modify(stock.quantity)")
        incomplete = event_base_from((CREATE_STOCK, "o1", 2))
        complete = event_base_from((CREATE_STOCK, "o1", 2), (MODIFY_QTY, "o2", 4))
        assert not is_triggered(expression, incomplete, None, 5).triggered
        assert is_triggered(expression, complete, None, 5).triggered

    def test_consideration_consumes_triggering_events(self):
        expression = parse_expression("create(stock)")
        eb = event_base_from((CREATE_STOCK, "o1", 2), (CREATE_ORDER, "o3", 6))
        # After considering at t=4, only the order creation is in the window:
        # the stock creation has lost its capability of triggering the rule.
        decision = is_triggered(expression, eb, last_consideration=4, now=8)
        assert not decision.triggered

    def test_decision_is_truthy(self):
        eb = event_base_from((CREATE_STOCK, "o1", 2))
        assert is_triggered(parse_expression("create(stock)"), eb, None, 3)

    def test_accepts_prebuilt_window(self):
        eb = event_base_from((CREATE_STOCK, "o1", 2))
        window = eb.full_window()
        assert is_triggered(
            parse_expression("create(stock)"), window, None, 3
        ).triggered


class TestExistentialSemantics:
    """T(r, t) holds if ts was positive at *some* instant since last consideration."""

    def test_transient_activation_is_caught_by_exact_check(self):
        # -create(order) is active between the stock creation (t=2) and the
        # order creation (t=5); at t=6 it is no longer active, but the
        # existential over t1 still holds.
        expression = parse_expression("modify(stock.quantity) + -create(order)")
        eb = event_base_from(
            (MODIFY_QTY, "o1", 2),
            (CREATE_ORDER, "o3", 5),
        )
        exact = is_triggered(expression, eb, last_consideration=None, now=6)
        now_only = is_triggered_now(expression, eb, last_consideration=None, now=6)
        assert exact.triggered
        assert exact.instant == 2
        assert not now_only.triggered

    def test_incremental_check_converges_when_run_per_block(self):
        expression = parse_expression("modify(stock.quantity) + -create(order)")
        eb = event_base_from((MODIFY_QTY, "o1", 2), (CREATE_ORDER, "o3", 5))
        # Evaluating after the first block (t=2) already reports the triggering.
        first_block = is_triggered_now(expression, eb, last_consideration=None, now=2)
        assert first_block.triggered

    def test_exact_check_reports_first_triggering_instant(self):
        expression = parse_expression("create(stock) , modify(stock.quantity)")
        eb = event_base_from((CREATE_STOCK, "o1", 3), (MODIFY_QTY, "o1", 7))
        decision = is_triggered(expression, eb, None, 9)
        assert decision.instant == 3

    def test_now_check_reports_current_value(self):
        expression = parse_expression("create(stock)")
        eb = event_base_from((CREATE_STOCK, "o1", 3))
        decision = is_triggered_now(expression, eb, None, 9)
        assert decision.triggered
        assert decision.instant == 9
        assert decision.ts_value == 3
