"""Exactness of the incremental triggering check.

Two equivalences are asserted here:

* ``ts``/``ots``/``is_triggered`` computed over the zero-copy
  :class:`BoundedView` agree with the same functions computed over a
  materialized :class:`EventWindow` of the same bounds, on random histories,
  random expressions and random ``(after, until]`` bounds (hypothesis);
* the memoized, incremental ``is_triggered`` that the Trigger Support runs
  block-after-block returns *exactly* the decision of the seed implementation
  (full window materialization + full instant scan) at every step of a random
  multi-block simulation, including time-stamp ties that force the sampling
  frontier to rewind, skipped checks (as the ``V(E)`` filter causes), rule
  considerations that move the window start, checks without new events
  (commit-time ``recheck_all``), empty windows and pure-negation reactivity
  (seeded random, in the style of ``tests/core/test_properties.py``).
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.evaluation import EvaluationMode, ots, ts
from repro.core.expressions import (
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.parser import parse_expression
from repro.core.triggering import TriggerMemo, is_triggered
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase, EventWindow
from repro.workloads.generator import ExpressionGenerator, event_type_universe

A = EventType(Operation.CREATE, "A")
B = EventType(Operation.CREATE, "B")
C = EventType(Operation.CREATE, "C")
MOD_AX = EventType(Operation.MODIFY, "A", "x")

EVENT_TYPES = [A, B, C, MOD_AX]
OIDS = ["o1", "o2", "o3"]

event_types = st.sampled_from(EVENT_TYPES)
oids = st.sampled_from(OIDS)
instants = st.integers(min_value=1, max_value=25)
bounds = st.one_of(st.none(), st.integers(min_value=0, max_value=26))


def _primitives() -> st.SearchStrategy:
    return st.builds(Primitive, event_types)


def _extend_instance(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(InstanceConjunction, children, children),
        st.builds(InstanceDisjunction, children, children),
        st.builds(InstancePrecedence, children, children),
        st.builds(InstanceNegation, children),
    )


def _extend_set(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(SetConjunction, children, children),
        st.builds(SetDisjunction, children, children),
        st.builds(SetPrecedence, children, children),
        st.builds(SetNegation, children),
    )


instance_expressions = st.recursive(_primitives(), _extend_instance, max_leaves=4)
set_expressions = st.recursive(
    st.one_of(_primitives(), instance_expressions), _extend_set, max_leaves=5
)


@st.composite
def histories(draw, min_size: int = 0, max_size: int = 12) -> EventBase:
    entries = draw(
        st.lists(
            st.tuples(event_types, oids, instants), min_size=min_size, max_size=max_size
        )
    )
    event_base = EventBase()
    for event_type, oid, timestamp in sorted(entries, key=lambda entry: entry[2]):
        event_base.record(event_type, oid, timestamp)
    return event_base


@st.composite
def bounded_histories(draw) -> tuple[EventBase, int | None, int | None]:
    event_base = draw(histories())
    after = draw(bounds)
    until = draw(bounds)
    if after is not None and until is not None and after > until:
        after, until = until, after
    return event_base, after, until


# ---------------------------------------------------------------------------
# View vs. window: the calculus cannot tell them apart
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(expression=set_expressions, pair=bounded_histories(), instant=instants)
def test_ts_agrees_between_view_and_window(expression, pair, instant):
    event_base, after, until = pair
    view = event_base.view(after=after, until=until)
    window = event_base.window(after=after, until=until)
    for mode in EvaluationMode:
        assert ts(expression, view, instant, mode) == ts(
            expression, window, instant, mode
        )


@settings(max_examples=150, deadline=None)
@given(
    expression=instance_expressions,
    pair=bounded_histories(),
    instant=instants,
    oid=oids,
)
def test_ots_agrees_between_view_and_window(expression, pair, instant, oid):
    event_base, after, until = pair
    view = event_base.view(after=after, until=until)
    window = event_base.window(after=after, until=until)
    for mode in EvaluationMode:
        assert ots(expression, view, instant, oid, mode) == ots(
            expression, window, instant, oid, mode
        )


@settings(max_examples=150, deadline=None)
@given(expression=set_expressions, pair=bounded_histories(), now=instants)
def test_is_triggered_agrees_between_view_and_window(expression, pair, now):
    event_base, after, _ = pair
    # The triggering path never looks backwards: last_consideration <= now.
    after = None if after is None else min(after, now)
    # The EB path carves the (after, now] view internally; compare against an
    # explicitly materialized window of the same bounds.
    window = event_base.window(after=after, until=now)
    from_view = is_triggered(expression, event_base, after, now)
    from_window = is_triggered(expression, window, after, now)
    assert from_view.triggered == from_window.triggered
    assert from_view.instant == from_window.instant
    assert from_view.ts_value == from_window.ts_value
    assert from_view.window_size == from_window.window_size


# ---------------------------------------------------------------------------
# Incremental (memoized) checks vs. the seed full-rescan semantics
# ---------------------------------------------------------------------------


def _full_rescan(expression, event_base, last_consideration, now):
    """The seed implementation: materialize the window, scan every instant."""
    window = EventWindow(event_base, after=last_consideration, until=now)
    return is_triggered(expression, window, last_consideration, now)


def _assert_same_decision(incremental, reference, context):
    assert incremental.triggered == reference.triggered, context
    assert incremental.instant == reference.instant, context
    assert incremental.ts_value == reference.ts_value, context
    assert incremental.window_size == reference.window_size, context


def _run_simulation(seed: int, expressions, blocks: int = 40) -> int:
    """Random multi-block run; every incremental decision must match the seed.

    Returns the number of triggerings observed (so callers can require the
    scenario was not vacuous).
    """
    rng = random.Random(seed)
    event_base = EventBase()
    universe = EVENT_TYPES
    rules = [
        {"expression": expression, "last_consideration": None, "memo": TriggerMemo()}
        for expression in expressions
    ]
    now = 0
    triggerings = 0
    for _ in range(blocks):
        # A block appends 0..3 occurrences; with some probability it reuses the
        # current instant (a time-stamp tie with an already-sampled frontier,
        # the case that forces the incremental check to rewind).
        for _ in range(rng.randint(0, 3)):
            if now == 0 or rng.random() < 0.7:
                now += rng.randint(1, 2)
            event_base.record(rng.choice(universe), rng.choice(OIDS), max(now, 1))
            now = max(now, 1)
        if now == 0:
            continue
        for rule in rules:
            if rng.random() < 0.25:
                # Simulate a V(E) filter skip: the memo must stay correct even
                # though this check never ran.
                continue
            incremental = is_triggered(
                rule["expression"],
                event_base,
                rule["last_consideration"],
                now,
                memo=rule["memo"],
            )
            reference = _full_rescan(
                rule["expression"], event_base, rule["last_consideration"], now
            )
            _assert_same_decision(
                incremental,
                reference,
                f"seed={seed} now={now} expr={rule['expression']}",
            )
            if incremental.triggered:
                triggerings += 1
                # Consider the rule: the window start moves and the memo is
                # forgotten, exactly like RuleState.mark_considered does.
                rule["last_consideration"] = now
                rule["memo"].clear()
        if rng.random() < 0.2:
            # A commit-style recheck at a later instant with no new events.
            now += 1
            for rule in rules:
                incremental = is_triggered(
                    rule["expression"],
                    event_base,
                    rule["last_consideration"],
                    now,
                    memo=rule["memo"],
                )
                reference = _full_rescan(
                    rule["expression"], event_base, rule["last_consideration"], now
                )
                _assert_same_decision(
                    incremental, reference, f"seed={seed} recheck now={now}"
                )
                if incremental.triggered:
                    triggerings += 1
                    rule["last_consideration"] = now
                    rule["memo"].clear()
    return triggerings


def test_incremental_matches_full_rescan_on_random_simulations():
    total = 0
    for seed in range(12):
        expressions = [
            parse_expression("create(A)"),
            parse_expression("-create(A)"),  # pure negation: R != {} reactivity
            parse_expression("create(A) + create(B)"),
            parse_expression("create(A) , -create(B)"),
            parse_expression("create(A) < create(B)"),
            parse_expression("modify(A.x) + -create(C)"),
        ]
        total += _run_simulation(seed, expressions)
    # The scenarios must actually exercise triggering, not just empty windows.
    assert total > 50


def test_incremental_matches_full_rescan_on_random_expressions():
    generator = ExpressionGenerator(seed=13, instance_probability=0.25)
    # The generator uses its own class universe; drive the simulation with the
    # matching event types so the expressions can actually activate.
    universe = event_type_universe()
    rng = random.Random(99)
    event_base = EventBase()
    rules = [
        {"expression": expression, "last_consideration": None, "memo": TriggerMemo()}
        for expression in generator.expressions(8, operators=3)
    ]
    now = 0
    for _ in range(30):
        for _ in range(rng.randint(0, 3)):
            if now == 0 or rng.random() < 0.7:
                now += rng.randint(1, 2)
            event_base.record(
                rng.choice(universe), f"cls0#{rng.randint(1, 3)}", max(now, 1)
            )
            now = max(now, 1)
        if now == 0:
            continue
        for rule in rules:
            if rng.random() < 0.25:
                continue
            incremental = is_triggered(
                rule["expression"], event_base, rule["last_consideration"], now,
                memo=rule["memo"],
            )
            reference = _full_rescan(
                rule["expression"], event_base, rule["last_consideration"], now
            )
            _assert_same_decision(incremental, reference, f"now={now}")
            if incremental.triggered:
                rule["last_consideration"] = now
                rule["memo"].clear()


# ---------------------------------------------------------------------------
# Targeted corner cases
# ---------------------------------------------------------------------------


class TestMemoCornerCases:
    def test_empty_window_never_triggers_and_leaves_memo_untouched(self):
        event_base = EventBase()
        memo = TriggerMemo()
        expression = parse_expression("-create(A)")
        decision = is_triggered(expression, event_base, None, 5, memo=memo)
        assert not decision.triggered
        assert decision.window_size == 0
        assert not memo.valid

    def test_pure_negation_reactivity_with_memo(self):
        event_base = EventBase()
        memo = TriggerMemo()
        expression = parse_expression("-create(A)")
        # Nothing happened: blocked by R != {} despite the vacuous activation.
        assert not is_triggered(expression, event_base, None, 3, memo=memo)
        # Any unrelated occurrence unblocks the rule.
        event_base.record(B, "o1", 4)
        decision = is_triggered(expression, event_base, None, 4, memo=memo)
        assert decision.triggered
        assert not memo.valid  # cleared on triggering

    def test_tie_rewinds_the_sampling_frontier(self):
        # First check at now=5 samples {5} negatively; then an occurrence
        # arrives bearing the *same* time stamp.  The memo must rewind and
        # resample instant 5, or the triggering would be missed.
        event_base = EventBase()
        event_base.record(B, "o1", 5)
        memo = TriggerMemo()
        expression = parse_expression("create(A)")
        assert not is_triggered(expression, event_base, None, 5, memo=memo)
        assert memo.valid and memo.last_sampled == 5
        event_base.record(A, "o2", 5)
        decision = is_triggered(expression, event_base, None, 5, memo=memo)
        assert decision.triggered
        assert decision.instant == 5

    def test_memo_is_ignored_for_prebuilt_windows(self):
        event_base = EventBase()
        event_base.record(A, "o1", 2)
        window = event_base.full_window()
        memo = TriggerMemo()
        decision = is_triggered(
            parse_expression("create(A)"), window, None, 3, memo=memo
        )
        assert decision.triggered
        assert not memo.valid

    def test_memo_invalidated_by_window_start_change(self):
        event_base = EventBase()
        event_base.record(A, "o1", 2)
        memo = TriggerMemo()
        expression = parse_expression("create(B)")
        assert not is_triggered(expression, event_base, None, 2, memo=memo)
        assert memo.covers(None)
        # A consideration moved the window start: the memo no longer covers it
        # and the check falls back to a full scan of the new window.
        event_base.record(B, "o2", 4)
        decision = is_triggered(expression, event_base, 3, 4, memo=memo)
        assert decision.triggered
        assert decision.instant == 4

    def test_fewer_instants_sampled_on_second_check(self):
        event_base = EventBase()
        for stamp in range(1, 11):
            event_base.record(B, f"o{stamp}", stamp)
        memo = TriggerMemo()
        expression = parse_expression("create(A)")
        first = is_triggered(expression, event_base, None, 10, memo=memo)
        assert not first.triggered
        assert first.instants_sampled == 10
        event_base.record(B, "oX", 11)
        second = is_triggered(expression, event_base, None, 11, memo=memo)
        assert not second.triggered
        # Only the new instant is sampled: the ten old ones are covered.
        assert second.instants_sampled == 1
