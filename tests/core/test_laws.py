"""Algebraic laws of §4.3: De Morgan, commutativity, associativity, factoring."""

import pytest

from repro.core.evaluation import ts
from repro.core.expressions import (
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.laws import (
    LAWS,
    check_law,
    eliminate_double_negation,
    expressions_equivalent,
    law_by_name,
    negation_normal_form,
)

from tests.conftest import A, B, C, PA, PB, PC, history

WINDOW = history(
    (A, "o1", 2),
    (B, "o2", 4),
    (A, "o2", 6),
    (C, "o1", 7),
    (B, "o1", 9),
)
INSTANTS = list(range(1, 12))


class TestRegistry:
    def test_registry_is_not_empty(self):
        assert len(LAWS) >= 12

    def test_law_by_name(self):
        assert law_by_name("de_morgan_conjunction").arity == 2
        with pytest.raises(KeyError):
            law_by_name("no_such_law")

    def test_check_law_validates_arity(self):
        with pytest.raises(ValueError):
            check_law(law_by_name("de_morgan_conjunction"), [PA], WINDOW, 5)


class TestLawsOnPrimitiveOperands:
    """Every registered law meets its stated guarantee on primitive operands."""

    @pytest.mark.parametrize("law", LAWS, ids=lambda law: law.name)
    @pytest.mark.parametrize("instant", [1, 3, 5, 8, 10])
    def test_law_holds(self, law, instant):
        operands = [PA, PB, PC][: law.arity]
        result = check_law(law, operands, WINDOW, instant)
        assert result.holds, (
            f"{law.name} failed at t={instant}: lhs={result.lhs_value} rhs={result.rhs_value}"
        )

    @pytest.mark.parametrize(
        "law",
        [law for law in LAWS if law.guarantee == "exact"],
        ids=lambda law: law.name,
    )
    @pytest.mark.parametrize("instant", [1, 3, 5, 8, 10])
    def test_exact_laws_are_exact(self, law, instant):
        operands = [PA, PB, PC][: law.arity]
        result = check_law(law, operands, WINDOW, instant)
        assert result.exact_equal


class TestLawsOnNegatedOperands:
    """With negated operands the laws still meet their stated guarantee."""

    OPERANDS = [SetNegation(PA), PB, SetNegation(PC)]

    @pytest.mark.parametrize(
        "law",
        [law for law in LAWS if not law.negation_free_operands_only],
        ids=lambda law: law.name,
    )
    @pytest.mark.parametrize("instant", [1, 5, 8, 10])
    def test_activation_agreement(self, law, instant):
        result = check_law(law, self.OPERANDS[: law.arity], WINDOW, instant)
        assert result.holds, (
            f"{law.name} failed at t={instant}: lhs={result.lhs_value} rhs={result.rhs_value}"
        )

    def test_right_factoring_is_restricted_to_negation_free_operands(self):
        law = law_by_name("precedence_right_factoring_disjunction")
        assert law.negation_free_operands_only


class TestDeMorganExplicit:
    """The Fig. 5 identity spelled out: ts(-(A , B)) == ts(-A + -B)."""

    def test_identity_over_all_instants(self):
        lhs = SetNegation(SetDisjunction(PA, PB))
        rhs = SetConjunction(SetNegation(PA), SetNegation(PB))
        for instant in INSTANTS:
            assert ts(lhs, WINDOW, instant) == ts(rhs, WINDOW, instant)

    def test_dual_identity_over_all_instants(self):
        lhs = SetNegation(SetConjunction(PA, PB))
        rhs = SetDisjunction(SetNegation(PA), SetNegation(PB))
        for instant in INSTANTS:
            assert ts(lhs, WINDOW, instant) == ts(rhs, WINDOW, instant)


class TestExpressionsEquivalent:
    def test_exact_equivalence(self):
        assert expressions_equivalent(
            SetConjunction(PA, PB), SetConjunction(PB, PA), WINDOW, INSTANTS
        )

    def test_non_equivalent_detected(self):
        assert not expressions_equivalent(PA, PB, WINDOW, INSTANTS)

    def test_activation_level_equivalence(self):
        lhs = SetConjunction(SetNegation(PA), SetDisjunction(PB, PC))
        rhs = SetDisjunction(
            SetConjunction(SetNegation(PA), PB), SetConjunction(SetNegation(PA), PC)
        )
        assert expressions_equivalent(lhs, rhs, WINDOW, INSTANTS, exact=False)


class TestRewriting:
    def test_double_negation_elimination(self):
        assert eliminate_double_negation(SetNegation(SetNegation(PA))) == PA

    def test_double_negation_elimination_is_recursive(self):
        expression = SetConjunction(SetNegation(SetNegation(PA)), PB)
        assert eliminate_double_negation(expression) == SetConjunction(PA, PB)

    def test_instance_double_negation(self):
        assert eliminate_double_negation(InstanceNegation(InstanceNegation(PA))) == PA

    def test_nnf_pushes_set_negation(self):
        expression = SetNegation(SetConjunction(PA, PB))
        assert negation_normal_form(expression) == SetDisjunction(
            SetNegation(PA), SetNegation(PB)
        )

    def test_nnf_pushes_instance_negation(self):
        expression = InstanceNegation(InstanceDisjunction(PA, PB))
        assert negation_normal_form(expression) == InstanceConjunction(
            InstanceNegation(PA), InstanceNegation(PB)
        )

    def test_nnf_stops_at_precedence(self):
        expression = SetNegation(SetPrecedence(PA, PB))
        assert negation_normal_form(expression) == expression

    def test_nnf_preserves_semantics(self):
        expression = SetNegation(
            SetDisjunction(SetConjunction(PA, SetNegation(PB)), PC)
        )
        rewritten = negation_normal_form(expression)
        for instant in INSTANTS:
            assert ts(expression, WINDOW, instant) == ts(rewritten, WINDOW, instant)

    def test_nnf_leaves_primitives_alone(self):
        assert negation_normal_form(PA) == PA
        assert negation_normal_form(Primitive(C)) == PC
