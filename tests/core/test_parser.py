"""Tests for the textual event-expression parser."""

import pytest

from repro.core.expressions import (
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.parser import format_expression, parse_expression, tokenize
from repro.errors import CompositionError, ExpressionSyntaxError

from tests.conftest import PA, PB, PC


class TestTokenizer:
    def test_two_character_operators_win(self):
        kinds = [(t.kind, t.text) for t in tokenize("a += b , c ,= d")]
        operators = [text for kind, text in kinds if kind == "OP"]
        assert operators == ["+=", ",", ",="]

    def test_unknown_character_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            tokenize("create(stock) ? delete(stock)")

    def test_end_token_is_appended(self):
        assert tokenize("x")[-1].kind == "END"


class TestPrimitives:
    def test_simple_primitive(self):
        assert parse_expression("create(stock)") == Primitive("create(stock)")

    def test_attribute_primitive(self):
        parsed = parse_expression("modify(stock.quantity)")
        assert parsed.event_type.attribute == "quantity"

    def test_unknown_operation_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("frobnicate(stock)")

    def test_missing_class_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("create()")

    def test_empty_input_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("create(stock) delete(stock)")


class TestSetOperators:
    def test_disjunction(self):
        parsed = parse_expression("create(A) , create(B)")
        assert parsed == SetDisjunction(PA, PB)

    def test_conjunction(self):
        parsed = parse_expression("create(A) + create(B)")
        assert parsed == SetConjunction(PA, PB)

    def test_precedence_operator(self):
        parsed = parse_expression("create(A) < create(B)")
        assert parsed == SetPrecedence(PA, PB)

    def test_negation(self):
        parsed = parse_expression("-create(A)")
        assert parsed == SetNegation(PA)

    def test_double_negation(self):
        parsed = parse_expression("--create(A)")
        assert parsed == SetNegation(SetNegation(PA))

    def test_conjunction_binds_tighter_than_disjunction(self):
        parsed = parse_expression("create(A) , create(B) + create(C)")
        assert parsed == SetDisjunction(PA, SetConjunction(PB, PC))

    def test_negation_binds_tighter_than_conjunction(self):
        parsed = parse_expression("-create(A) + create(B)")
        assert parsed == SetConjunction(SetNegation(PA), PB)

    def test_left_associativity(self):
        parsed = parse_expression("create(A) + create(B) + create(C)")
        assert parsed == SetConjunction(SetConjunction(PA, PB), PC)

    def test_conjunction_and_precedence_share_level(self):
        parsed = parse_expression("create(A) + create(B) < create(C)")
        assert parsed == SetPrecedence(SetConjunction(PA, PB), PC)

    def test_parentheses_override_priority(self):
        parsed = parse_expression("(create(A) , create(B)) + create(C)")
        assert parsed == SetConjunction(SetDisjunction(PA, PB), PC)

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_expression("(create(A) , create(B)")


class TestInstanceOperators:
    def test_instance_conjunction(self):
        parsed = parse_expression("create(A) += create(B)")
        assert parsed == InstanceConjunction(PA, PB)

    def test_instance_disjunction(self):
        parsed = parse_expression("create(A) ,= create(B)")
        assert parsed == InstanceDisjunction(PA, PB)

    def test_instance_precedence(self):
        parsed = parse_expression("create(A) <= create(B)")
        assert parsed == InstancePrecedence(PA, PB)

    def test_instance_negation(self):
        parsed = parse_expression("-=create(A)")
        assert parsed == InstanceNegation(PA)

    def test_instance_binds_tighter_than_set(self):
        parsed = parse_expression("create(A) + create(B) += create(C)")
        assert parsed == SetConjunction(PA, InstanceConjunction(PB, PC))

    def test_instance_disjunction_binds_tighter_than_set_conjunction(self):
        parsed = parse_expression("create(A) + create(B) ,= create(C)")
        assert parsed == SetConjunction(PA, InstanceDisjunction(PB, PC))

    def test_instance_over_set_group_rejected(self):
        with pytest.raises(CompositionError):
            parse_expression("-=(create(A) + create(B))")

    def test_paper_example_mixed_expression(self):
        # modify(show.quantity) + (create(stock) <= modify(stock.quantity))
        parsed = parse_expression(
            "modify(show.quantity) + (create(stock) <= modify(stock.quantity))"
        )
        assert isinstance(parsed, SetConjunction)
        assert isinstance(parsed.right, InstancePrecedence)


class TestRoundTrip:
    EXPRESSIONS = [
        "create(stock)",
        "-create(stock)",
        "create(stock) , modify(stock.quantity)",
        "create(stock) + modify(stock.quantity)",
        "create(stock) < modify(stock.quantity)",
        "create(stock) += modify(stock.quantity)",
        "create(stock) ,= modify(stock.quantity)",
        "create(stock) <= modify(stock.quantity)",
        "-=create(stock)",
        "modify(show.quantity) + -(create(stockOrder) < modify(stockOrder.delquantity))",
        "(create(A) , create(B)) + -create(C)",
        "modify(show.quantity) + (create(stock) += (modify(stock.minquantity) ,= modify(stock.quantity)))",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_parse_format_parse_is_identity(self, text):
        first = parse_expression(text)
        assert parse_expression(format_expression(first)) == first

    def test_syntax_error_reports_position(self):
        with pytest.raises(ExpressionSyntaxError) as excinfo:
            parse_expression("create(stock) +")
        assert "position" in str(excinfo.value)
