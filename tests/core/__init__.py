"""Test package."""
