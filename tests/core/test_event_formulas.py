"""Event formulas of paper §3.3: ``occurred`` bindings and ``at`` occurrence instants."""

from repro.core.evaluation import activation_instants, active_objects
from repro.core.parser import parse_expression
from repro.events.event import EventType, Operation

from tests.conftest import history

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
DELETE_STOCK = EventType(Operation.DELETE, "stock")


class TestOccurredBindings:
    """``occurred(create(stock) <= modify(stock.quantity), X)`` from §3.3."""

    expression = parse_expression("create(stock) <= modify(stock.quantity)")

    def test_binds_objects_created_then_modified(self):
        window = history(
            (CREATE_STOCK, "o1", 1),
            (CREATE_STOCK, "o2", 2),
            (MODIFY_QTY, "o1", 3),
        )
        assert active_objects(self.expression, window, 4) == {"o1"}

    def test_binding_respects_order(self):
        window = history((MODIFY_QTY, "o1", 1), (CREATE_STOCK, "o1", 2))
        assert active_objects(self.expression, window, 4) == set()

    def test_consuming_window_hides_older_occurrences(self):
        # The same history observed through a consuming window that starts
        # after the creation no longer exposes the composite occurrence.
        full = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 3))
        consuming = history((MODIFY_QTY, "o1", 3))
        assert active_objects(self.expression, full, 4) == {"o1"}
        assert active_objects(self.expression, consuming, 4) == set()

    def test_net_effect_style_formula(self):
        """The paper's footnote: net effect of creation with later deletion."""
        expression = parse_expression(
            "(create(stock) <= modify(stock.quantity)) += -=delete(stock)"
        )
        window_kept = history((CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 2))
        window_deleted = history(
            (CREATE_STOCK, "o2", 1), (MODIFY_QTY, "o2", 2), (DELETE_STOCK, "o2", 3)
        )
        assert active_objects(expression, window_kept, 5) == {"o1"}
        assert active_objects(expression, window_deleted, 5) == set()


class TestAtOccurrenceInstants:
    """``at(create(stock) <= modify(stock.quantity), X, T)``: one instant per arising."""

    expression = parse_expression("create(stock) <= modify(stock.quantity)")

    def test_two_updates_yield_two_instants(self):
        # §3.3: "if the creation of a stock object is followed by two updates of
        # its quantity, the specified composite event occurs twice, exactly
        # when the two updates occur".
        window = history(
            (CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 3), (MODIFY_QTY, "o1", 5)
        )
        assert activation_instants(self.expression, window, "o1", until=6) == [3, 5]

    def test_no_instants_before_the_sequence_completes(self):
        window = history((CREATE_STOCK, "o1", 1))
        assert activation_instants(self.expression, window, "o1", until=9) == []

    def test_instants_respect_the_until_bound(self):
        window = history(
            (CREATE_STOCK, "o1", 1), (MODIFY_QTY, "o1", 3), (MODIFY_QTY, "o1", 5)
        )
        assert activation_instants(self.expression, window, "o1", until=4) == [3]

    def test_instants_are_per_object(self):
        window = history(
            (CREATE_STOCK, "o1", 1),
            (CREATE_STOCK, "o2", 2),
            (MODIFY_QTY, "o1", 3),
            (MODIFY_QTY, "o2", 6),
        )
        assert activation_instants(self.expression, window, "o1", until=9) == [3]
        assert activation_instants(self.expression, window, "o2", until=9) == [6]

    def test_primitive_instants_are_its_occurrences(self):
        window = history((MODIFY_QTY, "o1", 2), (MODIFY_QTY, "o1", 7))
        primitive = parse_expression("modify(stock.quantity)")
        assert activation_instants(primitive, window, "o1", until=9) == [2, 7]
