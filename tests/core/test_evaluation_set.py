"""Set-oriented ``ts`` semantics, including the worked timelines of paper §3.1."""

import pytest

from repro.core.evaluation import (
    EvaluationMode, EvaluationStats, evaluate, is_active, ts
)
from repro.core.expressions import (
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.parser import parse_expression
from repro.errors import EvaluationError
from repro.events.event import EventType, Operation

from tests.conftest import A, B, PA, PB, history

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
CREATE_ORDER = EventType(Operation.CREATE, "stockOrder")
MODIFY_DEL = EventType(Operation.MODIFY, "stockOrder", "delquantity")
MODIFY_MIN = EventType(Operation.MODIFY, "stock", "minquantity")
MODIFY_SHOW = EventType(Operation.MODIFY, "show", "quantity")

BOTH_MODES = [EvaluationMode.LOGICAL, EvaluationMode.ALGEBRAIC]


class TestPrimitive:
    """§3.1: two occurrences of create(stock) at t1 and t2."""

    window = history((CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2))
    expression = parse_expression("create(stock)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_not_active_before_first_occurrence(self, mode):
        # The paper evaluates "at time t < t1"; with integer ticks the earliest
        # probe instant before t1=1 does not exist, so probe exactly where the
        # first occurrence is missing by using a window starting later.
        empty = history((CREATE_STOCK, "o1", 5))
        assert ts(self.expression, empty, 4, mode) == -4

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_active_between_first_and_second(self, mode):
        assert ts(self.expression, self.window, 1, mode) == 1

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_activation_timestamp_moves_to_latest_occurrence(self, mode):
        assert ts(self.expression, self.window, 2, mode) == 2
        assert ts(self.expression, self.window, 10, mode) == 2

    def test_inactive_value_is_minus_t(self):
        other = parse_expression("delete(stock)")
        assert ts(other, self.window, 9) == -9

    def test_evaluate_wrapper(self):
        value = evaluate(self.expression, self.window, 5)
        assert value.is_active
        assert value.activation_timestamp == 2
        assert int(value) == 2

    def test_is_active_helper(self):
        assert is_active(self.expression, self.window, 5)
        assert not is_active(parse_expression("delete(stock)"), self.window, 5)

    def test_requires_positive_instant(self):
        with pytest.raises(EvaluationError):
            ts(self.expression, self.window, 0)


class TestDisjunctionTimeline:
    """§3.1 disjunction example: create(stock) at t1,t2; modify at t3."""

    window = history(
        (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2), (MODIFY_QTY, "o1", 3)
    )
    expression = parse_expression("create(stock) , modify(stock.quantity)")

    @pytest.mark.parametrize(
        "instant, expected",
        [(1, 1), (2, 2), (3, 3), (10, 3)],
    )
    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_activation_follows_most_recent_component(self, instant, expected, mode):
        assert ts(self.expression, self.window, instant, mode) == expected

    def test_not_active_when_no_component_occurred(self):
        window = history((CREATE_ORDER, "o9", 4))
        assert ts(self.expression, window, 5) == -5


class TestConjunctionTimeline:
    """§3.1 conjunction example: active only once both components occurred."""

    window = history(
        (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2), (MODIFY_QTY, "o1", 3)
    )
    expression = parse_expression("create(stock) + modify(stock.quantity)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_not_active_before_second_component(self, mode):
        assert ts(self.expression, self.window, 1, mode) == -1
        assert ts(self.expression, self.window, 2, mode) == -2

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_active_with_highest_component_timestamp(self, mode):
        assert ts(self.expression, self.window, 3, mode) == 3
        assert ts(self.expression, self.window, 10, mode) == 3


class TestNegationTimeline:
    """§3.1 negation example: -create(stock) active only before the creation."""

    expression = parse_expression("-create(stock)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_active_before_any_occurrence(self, mode):
        window = history((CREATE_STOCK, "o1", 5))
        assert ts(self.expression, window, 3, mode) == 3

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_not_active_after_occurrence(self, mode):
        window = history((CREATE_STOCK, "o1", 5))
        assert ts(self.expression, window, 5, mode) == -5
        assert ts(self.expression, window, 9, mode) == -5

    def test_negation_activation_is_current_time(self):
        window = history((MODIFY_QTY, "o1", 2))
        assert ts(self.expression, window, 7) == 7
        assert ts(self.expression, window, 8) == 8


class TestPrecedenceTimeline:
    """§3.1 precedence example: create(stock) < modify(stock.quantity)."""

    window = history(
        (CREATE_STOCK, "o1", 1), (CREATE_STOCK, "o2", 2), (MODIFY_QTY, "o1", 3)
    )
    expression = parse_expression("create(stock) < modify(stock.quantity)")

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_not_active_before_second_component(self, mode):
        assert ts(self.expression, self.window, 1, mode) == -1
        assert ts(self.expression, self.window, 2, mode) == -2

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_active_with_second_component_timestamp(self, mode):
        assert ts(self.expression, self.window, 3, mode) == 3

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_later_first_component_does_not_move_activation(self, mode):
        # The paper: "the second creation has a time stamp greater than that of
        # the last modification", so the activation stays at t3.
        later_create = history(
            (CREATE_STOCK, "o1", 1),
            (MODIFY_QTY, "o1", 3),
            (CREATE_STOCK, "o2", 4),
        )
        assert ts(self.expression, later_create, 9, mode) == 3

    @pytest.mark.parametrize("mode", BOTH_MODES)
    def test_wrong_order_never_activates(self, mode):
        window = history((MODIFY_QTY, "o1", 1), (CREATE_STOCK, "o1", 2))
        assert ts(self.expression, window, 5, mode) == -5

    def test_missing_first_component(self):
        window = history((MODIFY_QTY, "o1", 4))
        assert ts(self.expression, window, 6) == -6

    def test_missing_second_component(self):
        window = history((CREATE_STOCK, "o1", 4))
        assert ts(self.expression, window, 6) == -6


class TestComplexSetExpression:
    """The full §3.1 composite expression over show / stockOrder / stock events."""

    EXPRESSION = parse_expression(
        "modify(show.quantity) + -("
        "(create(stockOrder) < modify(stockOrder.delquantity)) , "
        "(modify(stock.minquantity) < modify(stock.quantity)))"
    )

    def test_active_when_shelf_changed_and_no_inner_sequence(self):
        window = history((MODIFY_SHOW, "p1", 4))
        assert ts(self.EXPRESSION, window, 5) > 0

    def test_inactive_when_stock_order_sequence_happened(self):
        window = history(
            (MODIFY_SHOW, "p1", 2), (CREATE_ORDER, "so1", 3), (MODIFY_DEL, "so1", 4)
        )
        assert ts(self.EXPRESSION, window, 5) < 0

    def test_inactive_when_min_then_quantity_sequence_happened(self):
        window = history(
            (MODIFY_SHOW, "p1", 2), (MODIFY_MIN, "o1", 3), (MODIFY_QTY, "o2", 4)
        )
        assert ts(self.EXPRESSION, window, 5) < 0

    def test_inactive_without_shelf_change(self):
        window = history((CREATE_ORDER, "so1", 3))
        assert ts(self.EXPRESSION, window, 5) < 0

    def test_unordered_inner_events_do_not_disable(self):
        # quantity modified *before* minquantity: the inner precedence is not
        # active, so its negation keeps the whole expression active.
        window = history(
            (MODIFY_QTY, "o2", 2), (MODIFY_MIN, "o1", 3), (MODIFY_SHOW, "p1", 4)
        )
        assert ts(self.EXPRESSION, window, 5) > 0


class TestModesAgree:
    def test_logical_and_algebraic_agree_on_nested_expression(self):
        expression = SetDisjunction(
            SetConjunction(PA, SetNegation(PB)), SetPrecedence(PA, PB)
        )
        window = history((A, "o1", 2), (B, "o2", 5), (A, "o3", 7))
        for instant in range(1, 10):
            assert ts(expression, window, instant, EvaluationMode.LOGICAL) == ts(
                expression, window, instant, EvaluationMode.ALGEBRAIC
            )


class TestEvaluationStats:
    def test_stats_count_primitive_lookups(self):
        stats = EvaluationStats()
        window = history((A, "o1", 1), (B, "o1", 2))
        ts(SetConjunction(PA, PB), window, 3, stats=stats)
        assert stats.evaluations == 1
        assert stats.primitive_lookups == 2
        assert stats.node_visits == 3

    def test_stats_merge_and_reset(self):
        first = EvaluationStats(node_visits=2, primitive_lookups=1)
        second = EvaluationStats(node_visits=3, primitive_lookups=2, evaluations=1)
        first.merge(second)
        assert first.node_visits == 5
        assert first.primitive_lookups == 3
        first.reset()
        assert first.node_visits == 0
