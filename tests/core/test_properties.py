"""Property-based tests (hypothesis) for the event calculus invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.evaluation import EvaluationMode, ots, ts
from repro.core.expressions import (
    EventExpression,
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.laws import LAWS, check_law
from repro.core.optimization import variation_set
from repro.core.triggering import is_triggered
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventWindow

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

EVENT_TYPES = [
    EventType(Operation.CREATE, "A"),
    EventType(Operation.CREATE, "B"),
    EventType(Operation.CREATE, "C"),
    EventType(Operation.MODIFY, "A", "x"),
]
OIDS = ["o1", "o2", "o3"]

event_types = st.sampled_from(EVENT_TYPES)
oids = st.sampled_from(OIDS)
instants = st.integers(min_value=1, max_value=30)


@st.composite
def histories(draw, min_size: int = 0, max_size: int = 12) -> EventWindow:
    """A random event window with non-decreasing, possibly repeated time stamps."""
    entries = draw(
        st.lists(
            st.tuples(event_types, oids, instants),
            min_size=min_size,
            max_size=max_size,
        )
    )
    entries.sort(key=lambda entry: entry[2])
    occurrences = [
        EventOccurrence(
            eid=index + 1, event_type=event_type, oid=oid, timestamp=timestamp
        )
        for index, (event_type, oid, timestamp) in enumerate(entries)
    ]
    return EventWindow.of(occurrences)


def _primitives() -> st.SearchStrategy[EventExpression]:
    return st.builds(Primitive, event_types)


def _extend_instance(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(InstanceConjunction, children, children),
        st.builds(InstanceDisjunction, children, children),
        st.builds(InstancePrecedence, children, children),
        st.builds(InstanceNegation, children),
    )


def _extend_set(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(SetConjunction, children, children),
        st.builds(SetDisjunction, children, children),
        st.builds(SetPrecedence, children, children),
        st.builds(SetNegation, children),
    )


instance_expressions = st.recursive(_primitives(), _extend_instance, max_leaves=4)
set_expressions = st.recursive(
    st.one_of(_primitives(), instance_expressions), _extend_set, max_leaves=5
)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(expression=set_expressions, window=histories(), instant=instants)
def test_logical_and_algebraic_semantics_agree(expression, window, instant):
    """The two formulations of the operator semantics are equivalent."""
    logical = ts(expression, window, instant, EvaluationMode.LOGICAL)
    algebraic = ts(expression, window, instant, EvaluationMode.ALGEBRAIC)
    assert logical == algebraic


@settings(max_examples=120, deadline=None)
@given(
    expression=instance_expressions,
    window=histories(),
    instant=instants,
    oid=oids,
)
def test_logical_and_algebraic_ots_agree(expression, window, instant, oid):
    logical = ots(expression, window, instant, oid, EvaluationMode.LOGICAL)
    algebraic = ots(expression, window, instant, oid, EvaluationMode.ALGEBRAIC)
    assert logical == algebraic


@settings(max_examples=120, deadline=None)
@given(expression=set_expressions, window=histories(), instant=instants)
def test_negation_flips_the_sign(expression, window, instant):
    """ts(-E, t) == -ts(E, t) for every expression, window and instant."""
    assert ts(SetNegation(expression), window, instant) == -ts(
        expression, window, instant
    )


@settings(max_examples=120, deadline=None)
@given(expression=set_expressions, window=histories(), instant=instants)
def test_ts_value_is_bounded_by_the_instant(expression, window, instant):
    """|ts| never exceeds t, and an active value is a plausible time stamp."""
    value = ts(expression, window, instant)
    assert -instant <= value <= instant
    assert value != 0


@settings(max_examples=120, deadline=None)
@given(window=histories(min_size=1), instant=instants)
def test_primitive_ts_is_last_occurrence_or_minus_t(window, instant):
    for event_type in EVENT_TYPES:
        value = ts(Primitive(event_type), window, instant)
        expected = window.last_timestamp(event_type, instant)
        assert value == (expected if expected is not None else -instant)


@settings(max_examples=120, deadline=None)
@given(
    expression=instance_expressions,
    window=histories(),
    instant=instants,
    oid=oids,
)
def test_instance_activation_never_exceeds_set_activation(
    expression, window, instant, oid
):
    """ots(E, t, oid) <= ts(E, t) for negation-free instance expressions."""
    if any(isinstance(node, InstanceNegation) for node in expression.walk()):
        return
    assert ots(expression, window, instant, oid) <= ts(expression, window, instant)


def _contains_negation(expression: EventExpression) -> bool:
    return any(
        isinstance(node, (SetNegation, InstanceNegation)) for node in expression.walk()
    )


@settings(max_examples=80, deadline=None)
@given(
    window=histories(),
    instant=instants,
    operands=st.lists(set_expressions, min_size=3, max_size=3),
)
def test_every_law_meets_its_guarantee(window, instant, operands):
    """Each §4.3 law holds (at its stated guarantee level) on random operands."""
    has_negation = any(_contains_negation(operand) for operand in operands)
    for law in LAWS:
        if law.negation_free_operands_only and has_negation:
            continue
        result = check_law(law, operands[: law.arity], window, instant)
        assert result.holds, (
            f"{law.name}: lhs={result.lhs_value} rhs={result.rhs_value} at t={instant}"
        )


@settings(max_examples=80, deadline=None)
@given(
    window=histories(),
    instant=instants,
)
def test_negation_restricted_laws_hold_on_primitive_operands(window, instant):
    """Laws restricted to negation-free operands still hold on primitives."""
    operands = [Primitive(event_type) for event_type in EVENT_TYPES[:3]]
    for law in LAWS:
        if not law.negation_free_operands_only:
            continue
        result = check_law(law, operands[: law.arity], window, instant)
        assert result.holds


@settings(max_examples=100, deadline=None)
@given(expression=set_expressions, window=histories(), instant=instants)
def test_evaluation_only_depends_on_past_occurrences(expression, window, instant):
    """ts at instant t ignores occurrences with a later time stamp."""
    truncated = EventWindow.of(
        [occurrence for occurrence in window if occurrence.timestamp <= instant]
    )
    assert ts(expression, window, instant) == ts(expression, truncated, instant)


@settings(max_examples=100, deadline=None)
@given(
    expression=set_expressions,
    window=histories(min_size=1, max_size=8),
    new_type=event_types,
    new_oid=oids,
)
def test_variation_set_is_sound_for_triggering(expression, window, new_type, new_oid):
    """If V(E) has no positive entry for a type, a new occurrence of that type
    can never turn an untriggered expression into a triggered one.

    The invariant requires the prior window to be non-empty: with an empty
    window, a vacuously-active expression (e.g. a pure negation) is blocked
    only by the ``R != {}`` condition and any occurrence unblocks it — which is
    exactly why the Trigger Support applies the filter only after a non-empty
    evaluation (see the min_size=1 constraint here).
    """
    positive_types = {
        variation.event_type
        for variation in variation_set(expression)
        if variation.sign.includes_positive()
    }
    matches = any(
        watched.matches(new_type) or new_type.matches(watched)
        for watched in positive_types
    )
    if matches:
        return  # The filter would recompute; nothing to check.

    latest = window.latest_timestamp() or 0
    now = latest + 1
    before = is_triggered(expression, window, last_consideration=None, now=now)
    if before.triggered:
        return  # Already triggered; the filter only matters for untriggered rules.

    appended = list(window) + [
        EventOccurrence(
            eid=10_000, event_type=new_type, oid=new_oid, timestamp=now
        )
    ]
    after = is_triggered(
        expression, EventWindow.of(appended), last_consideration=None, now=now
    )
    assert not after.triggered, (
        f"occurrence of {new_type} activated {expression} although V(E) said it could not"
    )
