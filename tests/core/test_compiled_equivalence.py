"""Compiled vs interpreted exact checks: randomized differential equivalence.

The PR-6 compiled path (:mod:`repro.core.compile`) lowers each rule's event
expression into specialized closures and batches a trip's instants into one
pass.  Its contract is byte-identical behaviour: for any expression, any
Event-Base history, any window start and both evaluation modes, the compiled
``ts`` / ``ots`` / exact check must agree with the interpreted evaluator on
the value, the :class:`TriggeringDecision` (``instants_sampled`` included),
the :class:`TriggerMemo` transitions and the :class:`EvaluationStats`
counters (accumulated in bulk per check, but summing to the same totals).

The expression pool mixes randomized trees over all eight set/instance
operators with hand-built shapes the random generator reaches rarely: pure
negation, nested precedence, instance lifts with inner negations (the
universal and existential domain-growth cases) and instance-oriented roots.
The last tests replay whole churn scenarios through the coordinators —
serial, threads and processes — with compiled checks on and off.
"""

from __future__ import annotations

import random

from repro.core.compile import compile_check
from repro.core.evaluation import EvaluationMode, EvaluationStats
from repro.core.evaluation import ots as interpreted_ots
from repro.core.evaluation import ts as interpreted_ts
from repro.core.expressions import (
    InstanceConjunction,
    InstanceDisjunction,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.parser import parse_expression
from repro.core.triggering import TriggerMemo, is_triggered
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase
from repro.rules.actions import NO_ACTION
from repro.rules.conditions import TRUE_CONDITION
from repro.rules.event_handler import EventHandler
from repro.rules.rule import Rule, RuleState
from repro.rules.rule_table import RuleTable
from repro.rules.trigger_support import TriggerSupport
from repro.workloads.generator import (
    EventStreamGenerator,
    ExpressionGenerator,
    event_type_universe,
    stream_to_event_base,
)

MODES = (EvaluationMode.LOGICAL, EvaluationMode.ALGEBRAIC)

UNIVERSE = event_type_universe(classes=3, attributes_per_class=2)


def _expression_pool(seed: int = 23, count: int = 24):
    """Random trees plus hand-built shapes the generator reaches rarely."""
    generator = ExpressionGenerator(
        UNIVERSE, seed=seed, instance_probability=0.35, allow_negation=True
    )
    pool = generator.expressions(count, operators=4)
    a, b, c = (Primitive(UNIVERSE[index]) for index in (0, 1, 5))
    pool += [
        SetNegation(a),  # pure negation (vacuously active)
        SetNegation(SetNegation(SetDisjunction(a, b))),
        SetPrecedence(SetPrecedence(a, b), SetNegation(c)),  # nested precedence
        SetPrecedence(SetNegation(a), SetConjunction(b, c)),
        SetConjunction(InstanceNegation(a), b),  # universal lift
        SetNegation(
            SetNegation(InstanceDisjunction(InstanceNegation(a), InstanceNegation(b)))
        ),
        SetDisjunction(
            InstancePrecedence(a, InstanceConjunction(b, c)), SetNegation(b)
        ),
        InstanceConjunction(a, b),  # instance-oriented roots (ots defined)
        InstanceNegation(InstanceNegation(a)),
        InstancePrecedence(InstanceNegation(a), b),
        InstanceDisjunction(InstancePrecedence(a, b), InstanceNegation(c)),
    ]
    return pool


def _history(seed: int, blocks: int = 10):
    stream = EventStreamGenerator(
        UNIVERSE, objects_per_class=3, events_per_block=4, seed=seed
    )
    generated = stream.blocks(blocks)
    return generated, stream_to_event_base(generated)


class TestPointEquivalence:
    """Compiled ``ts``/``ots`` == interpreted, value and stats, both modes."""

    def test_ts_matches_interpreted(self):
        generated, event_base = _history(seed=17)
        stamps = [occ.timestamp for block in generated for occ in block]
        rng = random.Random(5)
        for mode in MODES:
            for expression in _expression_pool():
                compiled = compile_check(expression, mode)
                interpreted_stats, compiled_stats = EvaluationStats(), EvaluationStats()
                for _ in range(6):
                    instant = rng.choice(stamps)
                    window_start = rng.choice(
                        (None, stamps[0] - 1, instant - 2, instant)
                    )
                    window = event_base.view(after=window_start, until=instant)
                    expected = interpreted_ts(
                        expression, window, instant, mode, interpreted_stats
                    )
                    actual = compiled.ts(
                        event_base, window_start, instant, compiled_stats
                    )
                    assert actual == expected, (mode, expression, window_start, instant)
                assert compiled_stats == interpreted_stats, (mode, expression)

    def test_ots_matches_interpreted(self):
        generated, event_base = _history(seed=29)
        stamps = [occ.timestamp for block in generated for occ in block]
        oids = sorted({occ.oid for block in generated for occ in block})[:5]
        oids.append("ghost#1")  # an object the history never touched
        rng = random.Random(7)
        for mode in MODES:
            for expression in _expression_pool():
                if not expression.may_be_instance_operand():
                    continue
                compiled = compile_check(expression, mode)
                interpreted_stats, compiled_stats = EvaluationStats(), EvaluationStats()
                for oid in oids:
                    instant = rng.choice(stamps)
                    window_start = rng.choice((None, instant - 3))
                    window = event_base.view(after=window_start, until=instant)
                    expected = interpreted_ots(
                        expression, window, instant, oid, mode, interpreted_stats
                    )
                    actual = compiled.ots(
                        event_base, window_start, instant, oid, compiled_stats
                    )
                    assert actual == expected, (mode, expression, oid, instant)
                assert compiled_stats == interpreted_stats, (mode, expression)


class TestCheckEquivalence:
    """The incremental exact check: decisions, memo transitions and stats."""

    def test_incremental_check_sequence_matches(self):
        generated, _ = _history(seed=41, blocks=12)
        for mode in MODES:
            for expression in _expression_pool(seed=31, count=16):
                compiled = compile_check(expression, mode)
                event_base = EventBase()
                interpreted_memo, compiled_memo = TriggerMemo(), TriggerMemo()
                interpreted_stats, compiled_stats = EvaluationStats(), EvaluationStats()
                window_start = 0
                for block in generated:
                    for occurrence in block:
                        event_base.append(occurrence)
                    now = block[-1].timestamp
                    expected = is_triggered(
                        expression,
                        event_base,
                        window_start,
                        now,
                        mode,
                        interpreted_stats,
                        memo=interpreted_memo,
                    )
                    actual = compiled.check(
                        event_base,
                        window_start,
                        now,
                        memo=compiled_memo,
                        stats=compiled_stats,
                    )
                    assert actual == expected, (mode, expression, now)
                    assert (
                        compiled_memo.valid,
                        compiled_memo.window_start,
                        compiled_memo.last_sampled,
                        compiled_memo.seen_events,
                    ) == (
                        interpreted_memo.valid,
                        interpreted_memo.window_start,
                        interpreted_memo.last_sampled,
                        interpreted_memo.seen_events,
                    ), (mode, expression, now)
                    if expected.triggered:
                        # Mimic a consideration: the window start moves and
                        # both memos were already cleared by the check.
                        window_start = now
                assert compiled_stats == interpreted_stats, (mode, expression)

    def test_check_trip_matches_per_block_sequence(self):
        """One batched trip == the per-block interpreted walk with skip flags."""
        generated, event_base = _history(seed=53, blocks=8)
        nows = [block[-1].timestamp for block in generated]
        rng = random.Random(11)
        for mode in MODES:
            for expression in _expression_pool(seed=37, count=14):
                compiled = compile_check(expression, mode)
                entries = [(0, now, rng.random() < 0.4) for now in nows]
                interpreted_memo, compiled_memo = TriggerMemo(), TriggerMemo()
                interpreted_stats, compiled_stats = EvaluationStats(), EvaluationStats()
                expected: list = []
                tripped = False
                saw_nonempty = False
                for window_start, now, pending_only in entries:
                    if tripped or (pending_only and saw_nonempty):
                        expected.append(None)
                        continue
                    decision = is_triggered(
                        expression,
                        event_base,
                        window_start,
                        now,
                        mode,
                        interpreted_stats,
                        memo=interpreted_memo,
                    )
                    tripped = tripped or decision.triggered
                    saw_nonempty = saw_nonempty or decision.window_size > 0
                    expected.append(decision)
                actual = compiled.check_trip(
                    event_base, entries, memo=compiled_memo, stats=compiled_stats
                )
                assert actual == expected, (mode, expression)
                assert (
                    compiled_memo.valid,
                    compiled_memo.window_start,
                    compiled_memo.last_sampled,
                    compiled_memo.seen_events,
                ) == (
                    interpreted_memo.valid,
                    interpreted_memo.window_start,
                    interpreted_memo.last_sampled,
                    interpreted_memo.seen_events,
                ), (mode, expression)
                assert compiled_stats == interpreted_stats, (mode, expression)


class TestCoordinatorEquivalence:
    """Whole churn scenarios: compiled == interpreted in every execution mode."""

    def test_compiled_matches_interpreted_through_every_coordinator(self):
        from tests.cluster.test_shard_equivalence import run_scenario
        from tests.rules.test_planner_equivalence import build_scenario

        for seed in (0, 9):
            scenario = build_scenario(seed)
            reference = run_scenario(scenario, use_compiled_checks=False)
            assert run_scenario(scenario, use_compiled_checks=True) == reference
            for shard_mode in ("serial", "threads", "processes"):
                for batch_blocks in (1, 4):
                    interpreted = run_scenario(
                        scenario,
                        shards=4,
                        shard_mode=shard_mode,
                        batch_blocks=batch_blocks,
                        use_compiled_checks=False,
                    )
                    compiled = run_scenario(
                        scenario,
                        shards=4,
                        shard_mode=shard_mode,
                        batch_blocks=batch_blocks,
                        use_compiled_checks=True,
                    )
                    assert compiled == interpreted, (
                        f"seed {seed}, {shard_mode}, batch {batch_blocks}: "
                        "compiled checks diverged"
                    )


# ---------------------------------------------------------------------------
# Recompilation invariants: no pre-resolved handle survives a rebind
# ---------------------------------------------------------------------------


def _watcher(name: str = "w", pattern: str = "create(alpha)", order: int = 0) -> Rule:
    return Rule(
        name=name,
        events=parse_expression(pattern),
        condition=TRUE_CONDITION,
        action=NO_ACTION,
    )


class TestRecompilationInvariants:
    def _support(self):
        table = RuleTable()
        state = table.add(_watcher())
        state.reset(0)
        event_base = EventBase()
        handler = EventHandler(event_base)
        support = TriggerSupport(table, event_base, use_compiled_checks=True)
        support.prepare_rule(state)
        stamp = 0

        def feed_block() -> None:
            nonlocal stamp
            stamp += 1
            event_base.record(
                EventType(Operation.CREATE, "alpha"), oid="alpha#1", timestamp=stamp
            )
            batch = handler.flush_block()
            support.check_after_block(
                batch, stamp, 0, type_signature=batch.type_signature
            )
            if state.triggered:
                state.mark_considered(stamp, executed=False)

        return table, state, support, feed_block

    def test_prepare_rule_compiles_and_check_binds(self):
        table, state, support, feed_block = self._support()
        assert state.compiled_check is not None
        assert not state.compiled_check.is_bound
        feed_block()
        assert state.compiled_check.is_bound

    def test_forget_incremental_state_invalidates(self):
        table, state, support, feed_block = self._support()
        feed_block()
        support.forget_incremental_state()
        assert not state.compiled_check.is_bound
        feed_block()  # and the next check re-binds cleanly
        assert state.compiled_check.is_bound

    def test_schema_rebind_invalidates(self):
        from repro.oodb.schema import Schema

        table, state, support, feed_block = self._support()
        feed_block()
        table.bind_schema(Schema())
        assert not state.compiled_check.is_bound

    def test_disable_and_reenable_invalidate(self):
        table, state, support, feed_block = self._support()
        feed_block()
        table.disable("w")
        assert not state.compiled_check.is_bound
        feed_block()  # no check runs for a disabled rule
        assert not state.compiled_check.is_bound
        table.enable("w")
        feed_block()
        assert state.compiled_check.is_bound

    def test_event_base_swap_never_leaves_a_stale_handle(self):
        table, state, support, feed_block = self._support()
        feed_block()
        old_compiled = state.compiled_check
        assert old_compiled._bound_eb is support.event_base
        fresh = EventBase()
        support.event_base = fresh
        support.forget_incremental_state()
        assert old_compiled._bound_eb is None
        fresh.record(EventType(Operation.CREATE, "alpha"), oid="alpha#2", timestamp=9)
        decision = state.compiled_check.check(fresh, 0, 9)
        assert decision.triggered
        assert state.compiled_check._bound_eb is fresh

    def test_worker_definition_reship_recompiles(self):
        """A re-added name ships a fresh definition; the worker must rebuild
        its compiled closure, not keep evaluating the stale expression."""
        from repro.cluster.process_pool import ProcessShardPool

        pool = ProcessShardPool(1, use_compiled_checks=True)
        try:
            event_base = EventBase()
            event_base.record(
                EventType(Operation.CREATE, "alpha"), oid="alpha#1", timestamp=1
            )
            state = RuleState(rule=_watcher(), definition_order=0)
            rows, _ = pool.evaluate(event_base, {0: [(state, 0)]}, 1)
            assert rows[0][1].triggered
            # Same name, higher definition order, different expression: the
            # coordinator re-ships and the worker must replace entry+closure.
            replacement = RuleState(
                rule=_watcher(pattern="create(beta)"), definition_order=1
            )
            rows, _ = pool.evaluate(event_base, {0: [(replacement, 0)]}, 1)
            assert not rows[0][1].triggered
        finally:
            pool.close()

    def test_worker_reset_rebinds_to_the_new_mirror(self):
        """pool.reset() swaps the worker mirror; a compiled closure holding
        handles into the abandoned mirror would answer from stale indexes."""
        from repro.cluster.process_pool import ProcessShardPool

        pool = ProcessShardPool(1, use_compiled_checks=True)
        try:
            first = EventBase()
            first.record(
                EventType(Operation.CREATE, "alpha"), oid="alpha#1", timestamp=1
            )
            state = RuleState(rule=_watcher(), definition_order=0)
            rows, _ = pool.evaluate(first, {0: [(state, 0)]}, 1)
            assert rows[0][1].triggered
            pool.reset()
            second = EventBase()  # a fresh log with *no* alpha occurrence
            rows, _ = pool.evaluate(second, {0: [(state, 0)]}, 2)
            assert not rows[0][1].triggered
        finally:
            pool.close()
