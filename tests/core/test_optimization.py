"""Static optimization: derivation rules (Fig. 6), simplification (Fig. 7), V(E)."""


from repro.core.expressions import (
    InstanceConjunction,
    Primitive,
    InstanceNegation,
    InstancePrecedence,
    SetConjunction,
    SetDisjunction,
    SetNegation,
    SetPrecedence,
)
from repro.core.optimization import (
    RecomputationFilter,
    Scope,
    Sign,
    Variation,
    derive_variations,
    format_variations,
    simplify_variations,
    variation_set,
)
from repro.events.event import EventOccurrence, EventType, Operation

from tests.conftest import A, B, C, D, PA, PB, PC, PD


def names(variations) -> set[str]:
    return {str(variation) for variation in variations}


class TestSignAndScope:
    def test_sign_flip(self):
        assert Sign.POSITIVE.flipped() is Sign.NEGATIVE
        assert Sign.NEGATIVE.flipped() is Sign.POSITIVE
        assert Sign.BOTH.flipped() is Sign.BOTH

    def test_sign_merge(self):
        assert Sign.merge(Sign.POSITIVE, Sign.POSITIVE) is Sign.POSITIVE
        assert Sign.merge(Sign.POSITIVE, Sign.NEGATIVE) is Sign.BOTH
        assert Sign.merge(Sign.BOTH, Sign.NEGATIVE) is Sign.BOTH

    def test_scope_merge(self):
        assert Scope.merge(Scope.SET, Scope.OBJECT) is Scope.SET
        assert Scope.merge(Scope.OBJECT, Scope.OBJECT) is Scope.OBJECT

    def test_includes_positive(self):
        assert Sign.POSITIVE.includes_positive()
        assert Sign.BOTH.includes_positive()
        assert not Sign.NEGATIVE.includes_positive()

    def test_variation_rendering(self):
        assert str(Variation(A, Sign.POSITIVE, Scope.SET)) == "Δ+create(A)"
        assert str(Variation(A, Sign.NEGATIVE, Scope.OBJECT)) == "Δ-O create(A)"
        assert str(Variation(A, Sign.BOTH, Scope.SET)) == "Δcreate(A)"


class TestDerivationRules:
    def test_primitive(self):
        assert derive_variations(PA) == {Variation(A, Sign.POSITIVE, Scope.SET)}

    def test_negation_flips_sign(self):
        assert derive_variations(SetNegation(PA)) == {
            Variation(A, Sign.NEGATIVE, Scope.SET)
        }

    def test_double_negation_restores_sign(self):
        assert derive_variations(SetNegation(SetNegation(PA))) == {
            Variation(A, Sign.POSITIVE, Scope.SET)
        }

    def test_conjunction_propagates_to_both_operands(self):
        assert derive_variations(SetConjunction(PA, PB)) == {
            Variation(A, Sign.POSITIVE, Scope.SET),
            Variation(B, Sign.POSITIVE, Scope.SET),
        }

    def test_disjunction_propagates_to_both_operands(self):
        assert derive_variations(SetDisjunction(PA, SetNegation(PB))) == {
            Variation(A, Sign.POSITIVE, Scope.SET),
            Variation(B, Sign.NEGATIVE, Scope.SET),
        }

    def test_precedence_ignores_left_operand_and_marks_right_with_both_signs(self):
        assert derive_variations(SetPrecedence(PA, PB)) == {
            Variation(B, Sign.BOTH, Scope.SET)
        }

    def test_negated_precedence_still_watches_the_right_operand(self):
        # Regression: -(-A < B) becomes active when a new B occurrence arrives,
        # so B must keep a positive-covering variation through the negation.
        expression = SetNegation(SetPrecedence(SetNegation(PA), PB))
        variations = derive_variations(expression)
        assert variations == {Variation(B, Sign.BOTH, Scope.SET)}
        assert any(
            variation.event_type == B and variation.sign.includes_positive()
            for variation in variations
        )

    def test_instance_operators_switch_to_object_scope(self):
        assert derive_variations(InstanceConjunction(PA, PB)) == {
            Variation(A, Sign.POSITIVE, Scope.OBJECT),
            Variation(B, Sign.POSITIVE, Scope.OBJECT),
        }

    def test_instance_negation_flips_sign_at_object_scope(self):
        assert derive_variations(InstanceNegation(PA)) == {
            Variation(A, Sign.NEGATIVE, Scope.OBJECT)
        }

    def test_instance_precedence_keeps_right_operand_only(self):
        assert derive_variations(InstancePrecedence(PA, PB)) == {
            Variation(B, Sign.BOTH, Scope.OBJECT)
        }

    def test_precedence_with_negated_right_operand_watches_both_operands(self):
        # Regression: A < -B is probed at the current instant (the negation's
        # activation time stamp), so a new A occurrence can activate it.
        variations = derive_variations(SetPrecedence(PA, SetNegation(PB)))
        assert variations == {
            Variation(A, Sign.BOTH, Scope.SET),
            Variation(B, Sign.BOTH, Scope.SET),
        }

    def test_set_negation_over_instance_conjunction(self):
        expression = SetNegation(InstanceConjunction(PA, PB))
        assert derive_variations(expression) == {
            Variation(A, Sign.NEGATIVE, Scope.OBJECT),
            Variation(B, Sign.NEGATIVE, Scope.OBJECT),
        }


class TestSimplificationRules:
    def test_opposite_signs_merge_to_both(self):
        merged = simplify_variations(
            {
                Variation(A, Sign.POSITIVE, Scope.SET),
                Variation(A, Sign.NEGATIVE, Scope.SET),
            }
        )
        assert merged == {Variation(A, Sign.BOTH, Scope.SET)}

    def test_set_scope_absorbs_object_scope(self):
        merged = simplify_variations(
            {
                Variation(A, Sign.POSITIVE, Scope.SET),
                Variation(A, Sign.POSITIVE, Scope.OBJECT),
            }
        )
        assert merged == {Variation(A, Sign.POSITIVE, Scope.SET)}

    def test_object_scope_pair_stays_object_scoped(self):
        merged = simplify_variations(
            {
                Variation(A, Sign.POSITIVE, Scope.OBJECT),
                Variation(A, Sign.NEGATIVE, Scope.OBJECT),
            }
        )
        assert merged == {Variation(A, Sign.BOTH, Scope.OBJECT)}

    def test_cross_scope_opposite_signs(self):
        merged = simplify_variations(
            {
                Variation(B, Sign.POSITIVE, Scope.SET),
                Variation(B, Sign.NEGATIVE, Scope.OBJECT),
            }
        )
        assert merged == {Variation(B, Sign.BOTH, Scope.SET)}

    def test_different_types_are_kept_apart(self):
        merged = simplify_variations(
            {
                Variation(A, Sign.POSITIVE, Scope.SET),
                Variation(B, Sign.POSITIVE, Scope.SET),
            }
        )
        assert len(merged) == 2

    def test_empty_input(self):
        assert simplify_variations([]) == set()


class TestPaperExample:
    """The §5.1 worked example: V(E) = {ΔA, ΔB, Δ+C}.

    The expression is reconstructed from the paper's derivation steps (the OCR
    of the original is ambiguous): three disjuncts over A/B/C where A appears
    positively and negatively, B appears positively at the set level and
    negatively at the object level, and C only positively.
    """

    EXPRESSION = SetDisjunction(
        SetDisjunction(
            SetConjunction(PA, PB),
            SetConjunction(PC, SetNegation(PA)),
        ),
        SetConjunction(
            InstanceConjunction(PA, PC),
            SetNegation(InstanceConjunction(PB, PA)),
        ),
    )

    def test_derived_variations_before_simplification(self):
        derived = derive_variations(self.EXPRESSION)
        assert derived == {
            Variation(A, Sign.POSITIVE, Scope.SET),
            Variation(B, Sign.POSITIVE, Scope.SET),
            Variation(C, Sign.POSITIVE, Scope.SET),
            Variation(A, Sign.NEGATIVE, Scope.SET),
            Variation(A, Sign.POSITIVE, Scope.OBJECT),
            Variation(C, Sign.POSITIVE, Scope.OBJECT),
            Variation(B, Sign.NEGATIVE, Scope.OBJECT),
            Variation(A, Sign.NEGATIVE, Scope.OBJECT),
        }

    def test_simplified_variation_set_matches_paper(self):
        assert variation_set(self.EXPRESSION) == {
            Variation(A, Sign.BOTH, Scope.SET),
            Variation(B, Sign.BOTH, Scope.SET),
            Variation(C, Sign.POSITIVE, Scope.SET),
        }

    def test_rendering_matches_paper_notation(self):
        rendered = format_variations(variation_set(self.EXPRESSION))
        assert rendered == "{Δ+create(C), Δcreate(A), Δcreate(B)}"


class TestRecomputationFilter:
    def occurrence(self, event_type: EventType, oid: str = "o1", timestamp: int = 1):
        return EventOccurrence(
            eid=1, event_type=event_type, oid=oid, timestamp=timestamp
        )

    def test_irrelevant_types_are_skipped(self):
        filter_ = RecomputationFilter(SetConjunction(PA, PB))
        assert not filter_.needs_recomputation([self.occurrence(C)])
        assert filter_.statistics["skipped"] == 1

    def test_relevant_types_require_recomputation(self):
        filter_ = RecomputationFilter(SetConjunction(PA, PB))
        assert filter_.needs_recomputation([self.occurrence(B)])

    def test_negated_types_are_skipped(self):
        filter_ = RecomputationFilter(SetConjunction(PA, SetNegation(PB)))
        assert not filter_.needs_recomputation([self.occurrence(B)])
        assert filter_.needs_recomputation([self.occurrence(A)])

    def test_precedence_left_operand_is_skipped(self):
        filter_ = RecomputationFilter(SetPrecedence(PA, PB))
        assert not filter_.needs_recomputation([self.occurrence(A)])
        assert filter_.needs_recomputation([self.occurrence(B)])

    def test_class_level_subscription_matches_attribute_specific_occurrence(self):
        modify_stock = EventType(Operation.MODIFY, "stock")
        modify_qty = EventType(Operation.MODIFY, "stock", "quantity")
        from repro.core.expressions import Primitive

        filter_ = RecomputationFilter(Primitive(modify_stock))
        assert filter_.needs_recomputation([self.occurrence(modify_qty)])

    def test_accepts_plain_event_types(self):
        filter_ = RecomputationFilter(SetDisjunction(PA, PD))
        assert filter_.needs_recomputation([D])
        assert not filter_.needs_recomputation([B])

    def test_relevant_event_types(self):
        filter_ = RecomputationFilter(SetConjunction(PA, SetNegation(PB)))
        assert filter_.relevant_event_types() == {A}

    def test_mixed_batch_requires_recomputation(self):
        filter_ = RecomputationFilter(PA)
        batch = [self.occurrence(C), self.occurrence(A, timestamp=2)]
        assert filter_.needs_recomputation(batch)

    def test_str_shows_variations(self):
        filter_ = RecomputationFilter(PA)
        assert "Δ+create(A)" in str(filter_)


class TestSchemaAwareMatching:
    """Subclass-aware matching and its memo invalidation (the stale-cache fix)."""

    def occurrence(self, event_type: EventType, timestamp: int = 1):
        return EventOccurrence(
            eid=1, event_type=event_type, oid="o1", timestamp=timestamp
        )

    def _schema(self):
        from repro.oodb.schema import Schema

        schema = Schema()
        schema.define("order", {"amount": int})
        return schema

    def test_subclass_occurrence_matches_superclass_watch(self):
        schema = self._schema()
        schema.define("notFilledOrder", superclass="order")
        watch = EventType(Operation.CREATE, "order")
        filter_ = RecomputationFilter(Primitive(watch), schema=schema)
        assert filter_.matches(EventType(Operation.CREATE, "notFilledOrder"))

    def test_superclass_occurrence_does_not_match_subclass_watch(self):
        schema = self._schema()
        schema.define("notFilledOrder", superclass="order")
        watch = EventType(Operation.CREATE, "notFilledOrder")
        filter_ = RecomputationFilter(Primitive(watch), schema=schema)
        assert not filter_.matches(EventType(Operation.CREATE, "order"))

    def test_attribute_specific_watch_matches_subclass_attribute_occurrence(self):
        schema = self._schema()
        schema.define("notFilledOrder", superclass="order")
        watch = EventType(Operation.MODIFY, "order", "amount")
        filter_ = RecomputationFilter(Primitive(watch), schema=schema)
        assert filter_.matches(EventType(Operation.MODIFY, "notFilledOrder", "amount"))
        assert not filter_.matches(
            EventType(Operation.MODIFY, "notFilledOrder", "other")
        )

    def test_memo_invalidated_when_schema_gains_subclass_after_first_use(self):
        """Regression: a verdict cached before the subclass existed must not stick."""
        schema = self._schema()
        watch = EventType(Operation.CREATE, "order")
        filter_ = RecomputationFilter(Primitive(watch), schema=schema)
        special = EventType(Operation.CREATE, "special")
        # First use caches False: "special" is unknown to the schema.
        assert not filter_.matches(special)
        schema.define("special", superclass="order")
        assert filter_.matches(special)

    def test_bind_schema_after_construction_drops_stale_verdicts(self):
        schema = self._schema()
        schema.define("notFilledOrder", superclass="order")
        watch = EventType(Operation.CREATE, "order")
        filter_ = RecomputationFilter(Primitive(watch))
        sub = EventType(Operation.CREATE, "notFilledOrder")
        assert not filter_.matches(sub)  # schema-less: exact class names only
        filter_.bind_schema(schema)
        assert filter_.matches(sub)

    def test_needs_recomputation_sees_subclass_occurrences(self):
        schema = self._schema()
        schema.define("notFilledOrder", superclass="order")
        filter_ = RecomputationFilter(
            Primitive(EventType(Operation.CREATE, "order")), schema=schema
        )
        assert filter_.needs_recomputation(
            [self.occurrence(EventType(Operation.CREATE, "notFilledOrder"))]
        )
