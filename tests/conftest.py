"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.expressions import Primitive
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventBase, EventWindow
from repro.oodb.database import ChimeraDatabase
from repro.workloads.stock import build_figure3_event_base

# ---------------------------------------------------------------------------
# Abstract event types used by calculus-level tests (the paper's A, B, C).
# ---------------------------------------------------------------------------

A = EventType(Operation.CREATE, "A")
B = EventType(Operation.CREATE, "B")
C = EventType(Operation.CREATE, "C")
D = EventType(Operation.CREATE, "D")

PA = Primitive(A)
PB = Primitive(B)
PC = Primitive(C)
PD = Primitive(D)


def history(*entries: tuple[EventType, str, int]) -> EventWindow:
    """Build a window from ``(event_type, oid, timestamp)`` tuples.

    The helper used throughout the calculus tests to spell event histories
    compactly: ``history((A, "o1", 1), (B, "o2", 3))``.
    """
    occurrences = [
        EventOccurrence(
            eid=index + 1, event_type=event_type, oid=oid, timestamp=timestamp
        )
        for index, (event_type, oid, timestamp) in enumerate(
            sorted(entries, key=lambda entry: entry[2])
        )
    ]
    return EventWindow.of(occurrences)


def event_base_from(*entries: tuple[EventType, str, int]) -> EventBase:
    """Build a full :class:`EventBase` from ``(event_type, oid, timestamp)`` tuples."""
    event_base = EventBase()
    for event_type, oid, timestamp in sorted(entries, key=lambda entry: entry[2]):
        event_base.record(event_type, oid, timestamp)
    return event_base


@pytest.fixture
def figure3_eb() -> EventBase:
    """The paper's Fig. 3 Event Base."""
    return build_figure3_event_base()


@pytest.fixture
def stock_db() -> ChimeraDatabase:
    """A database with the paper's stock schema (no rules installed)."""
    db = ChimeraDatabase()
    db.define_class(
        "stock",
        {
            "name": str,
            "quantity": int,
            "minquantity": int,
            "maxquantity": int,
            "onorder": int,
        },
    )
    db.define_class("show", {"name": str, "quantity": int, "item": object})
    db.define_class("order", {"customer": str, "amount": int})
    db.define_class(
        "notFilledOrder", {"customer": str, "amount": int}, superclass="order"
    )
    db.define_class("stockOrder", {"item": object, "delquantity": int})
    return db
