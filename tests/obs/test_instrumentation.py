"""End-to-end instrumentation tests: the registry wired through the engine.

These drive the real pipeline — :class:`ChimeraDatabase` transactions, the
stream ingestor, the process-mode shard coordinator, the CLI — and assert
the metrics snapshot reflects what actually happened: source counters equal
to the canonical stats, worker deltas merged across the process boundary,
ambient ``$CHIMERA_METRICS`` exports, and the ``workload`` command's
``--metrics`` / ``--metrics-json`` surfaces.
"""

import json

from repro.cli import main
from repro.cluster.streaming import StreamIngestor
from repro.events.event import EventOccurrence, EventType, Operation
from repro.obs.export import METRICS_ENV_VAR
from repro.oodb.database import ChimeraDatabase
from repro.workloads.stock import CHECK_STOCK_QTY_RULE


def _stock_db(**kwargs) -> ChimeraDatabase:
    db = ChimeraDatabase(**kwargs)
    db.define_class(
        "stock", {"name": str, "quantity": int, "minquantity": int, "maxquantity": int}
    )
    db.define_rule(CHECK_STOCK_QTY_RULE)
    return db


def _drive(db: ChimeraDatabase, transactions: int = 3) -> None:
    for index in range(transactions):
        with db.transaction() as tx:
            tx.create("stock", {"quantity": 500 + index, "maxquantity": 100})


class TestDatabaseSnapshot:
    def test_trigger_counters_equal_the_canonical_stats(self):
        db = _stock_db()
        try:
            _drive(db)
            snapshot = db.metrics_snapshot()
            stats = db.trigger_statistics()
            assert stats["blocks"] > 0
            for key, value in stats.items():
                assert snapshot["counters"][f"trigger.{key}"] == value
        finally:
            db.close()

    def test_commit_path_is_instrumented(self):
        db = _stock_db()
        try:
            _drive(db, transactions=2)
            snapshot = db.metrics_snapshot()
            assert snapshot["counters"]["oodb.commits"] == 2
            assert snapshot["histograms"]["oodb.commit"]["count"] == 2
        finally:
            db.close()

    def test_sharded_database_folds_cluster_and_candidate_counters(self):
        db = _stock_db(shards=2, shard_mode="serial")
        try:
            _drive(db)
            counters = db.metrics_snapshot()["counters"]
            assert counters["cluster.blocks_fanned_out"] > 0
            assert counters["cluster.dispatch_trips"] > 0
            candidates = [
                value
                for name, value in counters.items()
                if name.startswith("shard.candidates.")
            ]
            assert candidates and sum(candidates) > 0
        finally:
            db.close()

    def test_process_mode_merges_worker_deltas(self):
        db = _stock_db(shards=2, shard_mode="processes")
        try:
            _drive(db)
            counters = db.metrics_snapshot()["counters"]
            assert counters["worker.trips"] > 0
            assert counters["worker.rules_evaluated"] > 0
            # The canonical trigger stats still fold in alongside them.
            for key, value in db.trigger_statistics().items():
                assert counters[f"trigger.{key}"] == value
        finally:
            db.close()


class TestIngestInstrumentation:
    def test_ingestor_reports_queue_depth_and_coalesce_sizes(self):
        stock_created = EventType(Operation.CREATE, "stock")
        db = _stock_db()
        try:
            with db.stream_ingestor(max_pending=4, batch_blocks=2) as ingestor:
                assert isinstance(ingestor, StreamIngestor)
                for instant in range(1, 7):
                    ingestor.submit(
                        [
                            EventOccurrence(
                                eid=instant,
                                event_type=stock_created,
                                oid=f"o{instant}",
                                timestamp=instant,
                            )
                        ]
                    )
                ingestor.flush()
            snapshot = db.metrics_snapshot()
            assert snapshot["counters"]["ingest.processed_blocks"] == 6
            # One update per submit; the adaptive-batch controller (ambient
            # $CHIMERA_ADAPTIVE_BATCH) additionally refreshes the gauge on
            # each consumer drain.
            assert snapshot["gauges"]["ingest.queue_depth"]["updates"] >= 6
            assert snapshot["histograms"]["ingest.coalesce_blocks"]["count"] > 0
        finally:
            db.close()


class TestAmbientExport:
    def test_chimera_metrics_env_writes_json_lines(self, tmp_path, monkeypatch):
        path = tmp_path / "ambient.jsonl"
        monkeypatch.setenv(METRICS_ENV_VAR, str(path))
        db = _stock_db()
        try:
            _drive(db)
        finally:
            db.close()
        lines = path.read_text().splitlines()
        assert lines, "engine close must write a final ambient snapshot"
        final = json.loads(lines[-1])
        assert final["counters"]["oodb.commits"] == 3
        assert final["counters"]["trigger.blocks"] > 0


class TestWorkloadCliSurfaces:
    ARGS = ["workload", "--rules", "30", "--blocks", "8", "--events-per-block", "4"]

    def test_metrics_flag_prints_the_text_report(self, capsys):
        assert main([*self.ARGS, "--metrics"]) == 0
        output = capsys.readouterr().out
        assert "counters" in output
        assert "trigger.blocks" in output

    def test_metrics_json_writes_a_snapshot_line(self, tmp_path, capsys):
        path = tmp_path / "workload.jsonl"
        assert main([*self.ARGS, "--metrics-json", str(path)]) == 0
        assert "wrote metrics snapshot" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        snapshot = json.loads(lines[0])
        assert snapshot["counters"]["trigger.blocks"] == 8
