"""Tests for the metrics text report and the JSON-lines exporter (PR 8)."""

import json

from repro.obs.export import (
    METRICS_ENV_VAR,
    JsonLinesExporter,
    render_metrics_report,
)
from repro.obs.registry import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("trigger.blocks").inc(3)
    registry.gauge("ingest.queue_depth").set(2.0)
    registry.histogram("trip.check").observe(0.004)
    registry.register_source("pool", lambda: {"round_trips": 5})
    return registry


class TestRenderMetricsReport:
    def test_report_contains_every_section(self):
        report = render_metrics_report(_populated_registry().snapshot())
        assert "counters" in report
        assert "trigger.blocks" in report and ": 3" in report
        assert "pool.round_trips" in report  # sources fold into the report
        assert "ingest.queue_depth" in report and "max 2.0" in report
        assert "trip.check" in report and "count 1" in report

    def test_empty_histograms_are_hidden(self):
        registry = MetricsRegistry()
        registry.histogram("trip.check")  # created, never observed
        assert "trip.check" not in render_metrics_report(registry.snapshot())

    def test_empty_snapshot_renders_placeholder(self):
        report = render_metrics_report(MetricsRegistry(enabled=False).snapshot())
        assert report == "metrics: (empty snapshot)"


class TestJsonLinesExporter:
    def test_export_appends_valid_json_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = _populated_registry()
        exporter = JsonLinesExporter(path)
        exporter.export(registry)
        registry.counter("trigger.blocks").inc()
        exporter.export(registry)
        exporter.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["at"] > 0
        assert first["counters"]["trigger.blocks"] == 3
        assert second["counters"]["trigger.blocks"] == 4
        assert first["counters"]["pool.round_trips"] == 5

    def test_maybe_export_is_rate_limited(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        exporter = JsonLinesExporter(path, interval_seconds=3600.0)
        registry = _populated_registry()
        assert exporter.maybe_export(registry) is True
        assert exporter.maybe_export(registry) is False  # within the interval
        exporter.close()
        assert exporter.exports == 1
        assert len(path.read_text().splitlines()) == 1

    def test_from_env_reads_the_ambient_path(self, tmp_path, monkeypatch):
        monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
        assert JsonLinesExporter.from_env() is None
        monkeypatch.setenv(METRICS_ENV_VAR, "   ")
        assert JsonLinesExporter.from_env() is None
        path = tmp_path / "ambient.jsonl"
        monkeypatch.setenv(METRICS_ENV_VAR, str(path))
        exporter = JsonLinesExporter.from_env()
        assert exporter is not None
        assert exporter.path == str(path)
        exporter.close()
