"""Unit tests for the metrics registry primitives (PR 8).

Covers the instrument basics, the disabled-registry null path, span
sampling, the drain/merge cross-process round trip, snapshot sources and
the :class:`~repro.obs.stats.MergeableStats` protocol.
"""

from dataclasses import dataclass, field

import pytest

from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stats import MergeableStats


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 7.0
        assert gauge.updates == 3
        assert gauge.as_dict() == {"value": 2.0, "max": 7.0, "updates": 3}

    def test_histogram_buckets_and_summary(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(55.5)
        assert histogram.min_value == 0.5
        assert histogram.max_value == 50.0
        # One observation per finite bucket plus one in the overflow bucket.
        assert histogram.bucket_counts == [1, 1, 1]

    def test_histogram_timer_observes_once(self):
        histogram = Histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.total > 0.0

    def test_histogram_quantile_is_bucket_resolution(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert Histogram("empty").quantile(0.99) == 0.0

    def test_histogram_merge_requires_identical_bounds(self):
        left = Histogram("h", bounds=(1.0,))
        right = Histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_empty_histogram_as_dict_is_zeroed(self):
        values = Histogram("h").as_dict()
        assert values["count"] == 0
        assert values["min"] == 0.0
        assert values["mean"] == 0.0


class TestDisabledRegistry:
    def test_disabled_factories_return_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is registry.counter("b")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.histogram("a") is registry.histogram("b")

    def test_null_instruments_are_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(10)
        registry.gauge("g").set(10.0)
        registry.histogram("h").observe(10.0)
        with registry.span("s", items=3):
            pass
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_disabled_drain_is_none(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        assert registry.drain_delta() is None


class TestEnabledRegistry:
    def test_factories_create_or_get_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.histogram("h").bounds == LATENCY_BUCKETS
        assert registry.histogram("sizes", bounds=COUNT_BUCKETS).bounds == COUNT_BUCKETS

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"]["g"] == {"value": 1.5, "max": 1.5, "updates": 1}
        values = snapshot["histograms"]["h"]
        assert values["count"] == 1
        assert values["sum"] == pytest.approx(0.25)
        assert len(values["buckets"]) == len(values["bounds"]) + 1

    def test_span_times_and_counts_attributes(self):
        registry = MetricsRegistry()
        with registry.span("trip", blocks=4):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"]["trip.blocks"] == 4
        assert snapshot["histograms"]["trip"]["count"] == 1

    def test_span_sampling_observes_every_nth(self):
        registry = MetricsRegistry(sample_every=4)
        for _ in range(8):
            with registry.span("trip", blocks=1):
                pass
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["trip"]["count"] == 2
        assert snapshot["counters"]["trip.blocks"] == 2

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(sample_every=0)


class TestDrainAndMerge:
    def test_round_trip_preserves_values_and_resets_origin(self):
        worker = MetricsRegistry()
        worker.counter("worker.trips").inc(3)
        worker.gauge("worker.depth").set(5.0)
        worker.histogram("worker.check").observe(0.01)
        delta = worker.drain_delta()
        assert delta is not None

        # The origin was zeroed: a second drain has nothing to ship.
        assert worker.drain_delta() is None
        assert worker.counter("worker.trips").value == 0

        coordinator = MetricsRegistry()
        coordinator.merge_delta(delta)
        snapshot = coordinator.snapshot()
        assert snapshot["counters"]["worker.trips"] == 3
        assert snapshot["gauges"]["worker.depth"]["max"] == 5.0
        assert snapshot["histograms"]["worker.check"]["count"] == 1
        assert snapshot["histograms"]["worker.check"]["sum"] == pytest.approx(0.01)

    def test_merge_is_commutative_across_workers(self):
        deltas = []
        for trips in (2, 5):
            worker = MetricsRegistry()
            worker.counter("worker.trips").inc(trips)
            worker.histogram("worker.check").observe(trips / 100.0)
            deltas.append(worker.drain_delta())

        forward = MetricsRegistry()
        for delta in deltas:
            forward.merge_delta(delta)
        backward = MetricsRegistry()
        for delta in reversed(deltas):
            backward.merge_delta(delta)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_ignores_none_and_disabled(self):
        registry = MetricsRegistry()
        registry.merge_delta(None)
        assert registry.snapshot()["counters"] == {}
        disabled = MetricsRegistry(enabled=False)
        disabled.merge_delta({"counters": {"c": 1}, "gauges": {}, "histograms": {}})
        assert disabled.snapshot()["counters"] == {}


@dataclass
class _InnerStats(MergeableStats):
    lookups: int = 0


@dataclass
class _OuterStats(MergeableStats):
    blocks: int = 0
    max_depth: int = 0
    inner: _InnerStats = field(default_factory=_InnerStats)


class TestSourcesAndMergeableStats:
    def test_sources_fold_into_snapshot_counters(self):
        registry = MetricsRegistry()
        stats = _OuterStats(blocks=2, max_depth=3, inner=_InnerStats(lookups=7))
        registry.register_source("pipe", stats)
        counters = registry.snapshot()["counters"]
        assert counters["pipe.blocks"] == 2
        assert counters["pipe.lookups"] == 7  # nested record flattened
        stats.blocks = 9
        # Sources are read at snapshot time, never cached.
        assert registry.snapshot()["counters"]["pipe.blocks"] == 9

    def test_callable_sources_are_supported(self):
        registry = MetricsRegistry()
        registry.register_source("pool", lambda: {"round_trips": 4})
        assert registry.snapshot()["counters"]["pool.round_trips"] == 4

    def test_sources_are_not_drained(self):
        registry = MetricsRegistry()
        registry.register_source("pipe", _OuterStats(blocks=2))
        assert registry.drain_delta() is None
        assert registry.snapshot()["counters"]["pipe.blocks"] == 2

    def test_mergeable_stats_merge_semantics(self):
        left = _OuterStats(blocks=2, max_depth=3, inner=_InnerStats(lookups=1))
        right = _OuterStats(blocks=5, max_depth=1, inner=_InnerStats(lookups=4))
        left.merge(right)
        assert left.blocks == 7  # plain fields sum
        assert left.max_depth == 3  # max_* fields keep the high-water mark
        assert left.inner.lookups == 5  # nested records merge recursively
