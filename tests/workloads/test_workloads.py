"""Tests for the stock scenario and the synthetic generators."""

from repro.core.expressions import Granularity, Primitive
from repro.events.event import Operation
from repro.workloads.generator import (
    EventStreamGenerator,
    ExpressionGenerator,
    event_type_universe,
    stream_to_event_base,
    window_over,
)
from repro.workloads.stock import (
    FIGURE3_ROWS,
    StockScenario,
    build_figure3_event_base,
)


class TestFigure3:
    def test_rows_match_the_paper(self):
        assert len(FIGURE3_ROWS) == 7
        assert FIGURE3_ROWS[0].event_type == "create(stock)"
        assert FIGURE3_ROWS[3].event_type == "create(notFilledOrder)"
        # e3 and e4 share a time stamp (same execution block in the paper).
        assert FIGURE3_ROWS[2].timestamp == FIGURE3_ROWS[3].timestamp

    def test_event_base_replay(self):
        eb = build_figure3_event_base()
        assert len(eb) == 7
        assert eb.obj(5) == "o1"
        assert str(eb.type_of(7)) == "delete(stock)"
        assert eb.timestamps() == [1, 2, 3, 5, 6, 7]


class TestStockScenario:
    def test_population(self):
        scenario = StockScenario(items=4, shelf_products=2, seed=0, install_rules=False)
        assert scenario.database.count("stock") == 4
        assert scenario.database.count("show") == 2
        assert len(scenario.stock_oids) == 4

    def test_rules_installed_by_default(self):
        scenario = StockScenario(items=2, shelf_products=1, seed=0)
        assert len(scenario.database.rule_table) == 3

    def test_run_day_is_reproducible(self):
        first = StockScenario(items=4, shelf_products=2, seed=42)
        second = StockScenario(items=4, shelf_products=2, seed=42)
        first.run_day(20)
        second.run_day(20)
        left = {str(o.oid): o.snapshot() for o in first.database.store.all_objects()}
        right = {str(o.oid): o.snapshot() for o in second.database.store.all_objects()}
        assert left == right

    def test_different_seeds_differ(self):
        first = StockScenario(items=4, shelf_products=2, seed=1)
        second = StockScenario(items=4, shelf_products=2, seed=2)
        first.run_day(30)
        second.run_day(30)
        left = {str(o.oid): o.snapshot() for o in first.database.store.all_objects()}
        right = {str(o.oid): o.snapshot() for o in second.database.store.all_objects()}
        assert left != right


class TestEventTypeUniverse:
    def test_shape(self):
        universe = event_type_universe(classes=2, attributes_per_class=3)
        assert len(universe) == 2 * (2 + 3)
        assert sum(1 for et in universe if et.operation is Operation.MODIFY) == 6


class TestEventStreamGenerator:
    def test_blocks_have_requested_size(self):
        generator = EventStreamGenerator(seed=0, events_per_block=4)
        blocks = generator.blocks(10)
        assert len(blocks) == 10
        assert all(len(block) == 4 for block in blocks)

    def test_timestamps_are_monotone(self):
        generator = EventStreamGenerator(seed=0)
        stream = [occ for block in generator.blocks(20) for occ in block]
        stamps = [occ.timestamp for occ in stream]
        assert stamps == sorted(stamps)

    def test_shared_block_timestamps(self):
        generator = EventStreamGenerator(
            seed=0, events_per_block=3, shared_block_timestamps=True
        )
        block = generator.next_block()
        assert len({occ.timestamp for occ in block}) == 1

    def test_reset_reproduces_the_stream(self):
        generator = EventStreamGenerator(seed=3)
        first = [[str(o) for o in b] for b in generator.blocks(5)]
        generator.reset()
        second = [[str(o) for o in b] for b in generator.blocks(5)]
        assert first == second

    def test_stream_to_event_base_and_window(self):
        generator = EventStreamGenerator(seed=1)
        blocks = generator.blocks(5)
        eb = stream_to_event_base(blocks)
        window = window_over(blocks)
        assert len(eb) == len(window) == sum(len(block) for block in blocks)


class TestExpressionGenerator:
    def test_operator_count_is_respected(self):
        generator = ExpressionGenerator(seed=0, instance_probability=0.0)
        for operators in (1, 3, 6):
            expression = generator.expression(operators)
            internal = sum(
                1 for node in expression.walk() if not isinstance(node, Primitive)
            )
            assert internal == operators

    def test_negation_free_mode(self):
        generator = ExpressionGenerator(
            seed=1, allow_negation=False, instance_probability=0.0
        )
        for expression in generator.expressions(10, operators=4):
            assert all(node.operator_name != "negation" for node in expression.walk())

    def test_instance_expressions_are_structurally_valid(self):
        generator = ExpressionGenerator(seed=2, instance_probability=1.0)
        for _ in range(10):
            expression = generator.instance_expression(operators=3)
            assert expression.may_be_instance_operand()

    def test_mixed_expressions_keep_instance_restriction(self):
        generator = ExpressionGenerator(seed=3, instance_probability=0.5)
        for expression in generator.expressions(20, operators=4):
            for node in expression.walk():
                if node.granularity is Granularity.INSTANCE:
                    assert node.may_be_instance_operand()

    def test_reproducibility(self):
        first = ExpressionGenerator(seed=9).expressions(5, operators=3)
        second = ExpressionGenerator(seed=9).expressions(5, operators=3)
        assert first == second
