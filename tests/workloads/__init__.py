"""Test package."""
