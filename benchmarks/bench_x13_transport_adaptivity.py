"""X13 — shared-memory delta transport + adaptive dispatch sizing.

X10 amortized the process shard mode's round trips; the residual per-block
transport cost is **delta encoding** — pickling the Event-Base window
snapshot once per trip, per distinct worker offset.  PR 9 replaces that
path with a shared-memory row ring: payload-free occurrences are encoded
once, globally, as fixed-width rows, and workers read trip deltas by
``(start, count)`` descriptor (payload-bearing rows fall back to per-row
pickles inside the same descriptor).  PR 9 also closes the loop on the
trip size itself: the ``DispatchController`` sizes each stream drain from
the live queue-depth / dispatch-latency signals.  This bench shows:

* **delta encoding gets cheaper** — per-block delta-encode cost, pickle vs
  shm, on the X10 check-heavy grid (the payload-free headline must clear
  2x; a payload-bearing arm exercises the fallback);
* **the controller adapts** — a bursty stream through static-1 / static-8 /
  adaptive ingestor arms: per-block trips while idle (latency within 10% of
  static-1), widened trips under backlog (throughput within 10% of
  static-8), and a shrink back to 1 when the burst drains (structural,
  asserted);
* **behavioral invisibility** — every transport grid point asserts
  identical triggering decisions, selections and stats across the single
  table, the serial coordinator and both process transports; every
  adaptivity arm is pinned against an unsharded replay of its realized
  trip partition.

Run as a script to execute the full sweep and write machine-readable
results to ``BENCH_PR9.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x13_transport_adaptivity.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the structural acceptance criteria.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.workloads.transport_adaptivity import (
    measure_bursty_adaptivity,
    measure_transport_encoding,
    render_x13,
    run_x13_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR9.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR9.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x13_sweeps(smoke=args.smoke)
    print(render_x13(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    print(
        f"headline: delta encode speedup {headline['delta_encode_speedup']}x "
        f"(shm vs pickle, payload-free); adaptive idle latency ratio "
        f"{headline['idle_latency_ratio']} vs static-1, backlog throughput "
        f"ratio {headline['backlog_throughput_ratio']} vs static-8 "
        f"(widened {headline['adaptive_widened']}x, settled back to bound "
        f"{headline['adaptive_final_bound']})"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x13_transports_identical_payload_free():
    # measure_transport_encoding asserts triggering + selection + stats
    # equivalence itself across the single table, serial, and both process
    # transports.
    result = measure_transport_encoding(
        400, workers=2, blocks=12, warmup_blocks=2, events_per_block=8, shapes=8
    )
    shm = result["transports"]["shm"]
    # Payload-free rows must ride the ring: no per-delta pickles, no
    # per-row fallbacks.
    assert shm["deltas_shm"] > 0 and shm["deltas_pickled"] == 0, shm
    assert shm["shm_rows_inline"] > 0 and shm["shm_rows_fallback"] == 0, shm
    pickled = result["transports"]["pickle"]
    assert pickled["deltas_shm"] == 0 and pickled["deltas_pickled"] > 0, pickled


def test_x13_payload_rows_fall_back_and_stay_identical():
    result = measure_transport_encoding(
        400,
        workers=2,
        blocks=12,
        warmup_blocks=2,
        events_per_block=8,
        shapes=8,
        payloads=True,
    )
    shm = result["transports"]["shm"]
    # Every row carries a payload, so every row must cross via the per-row
    # pickled fallback — while the equivalence asserts above still hold.
    assert shm["shm_rows_fallback"] > 0 and shm["shm_rows_inline"] == 0, shm
    assert shm["deltas_shm"] > 0, shm


def test_x13_adaptive_controller_widens_and_shrinks():
    result = measure_bursty_adaptivity(
        rule_count=200,
        shards=2,
        idle_blocks=6,
        backlog_blocks=24,
        cooldown_blocks=6,
        events_per_block=8,
    )
    arms = result["arms"]
    adaptive = arms["adaptive"]
    # Structural: the controller widened under backlog, shrank when it
    # drained, and finished back at per-block trips.
    assert adaptive["widened"] >= 1, adaptive
    assert adaptive["shrunk"] >= 1, adaptive
    assert adaptive["final_bound"] == 1, adaptive
    # Idle phases never coalesce (latency mode)...
    assert adaptive["idle_trips"] == result["idle_blocks"], adaptive
    # ...while the backlog drains in fewer trips than blocks (amortization).
    assert adaptive["backlog_trips"] < result["backlog_blocks"], adaptive
    assert adaptive["max_blocks_per_trip"] > 1, adaptive
    # The static arms never touch the controller.
    assert arms["static_1"]["widened"] == arms["static_8"]["widened"] == 0, arms


if __name__ == "__main__":
    main()
