"""E1 — the §3.1 worked timelines of the set-oriented operators.

For each of the paper's §3.1 examples (disjunction, conjunction, negation and
precedence over ``create(stock)`` / ``modify(stock.quantity)``), the bench
re-evaluates the activation status and activation time stamp at every probe
instant and checks them against the values the paper derives in prose.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_traces, ts_trace
from repro.core import parse_expression, ts
from repro.events.event import EventType, Operation
from repro.events.event_base import EventWindow
from repro.events.event import EventOccurrence

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")


def section_31_history() -> EventWindow:
    """create(stock) at t1 and t2, modify(stock.quantity) at t3."""
    return EventWindow.of(
        [
            EventOccurrence(1, CREATE_STOCK, "o1", 1),
            EventOccurrence(2, CREATE_STOCK, "o2", 2),
            EventOccurrence(3, MODIFY_QTY, "o1", 3),
        ]
    )


#: (expression, {instant: expected ts value}) — straight from the §3.1 prose.
PAPER_TIMELINES = [
    (
        "create(stock) , modify(stock.quantity)",
        {1: 1, 2: 2, 3: 3, 4: 3},
    ),
    (
        "create(stock) + modify(stock.quantity)",
        {1: -1, 2: -2, 3: 3, 4: 3},
    ),
    (
        "create(stock) < modify(stock.quantity)",
        {1: -1, 2: -2, 3: 3, 4: 3},
    ),
    (
        "-create(stock)",
        {1: -1, 2: -2, 3: -2, 4: -2},
    ),
    (
        "-create(stockOrder)",
        {1: 1, 2: 2, 3: 3, 4: 4},
    ),
]


def evaluate_all(window: EventWindow) -> dict[str, list[int]]:
    results: dict[str, list[int]] = {}
    for text, expectations in PAPER_TIMELINES:
        expression = parse_expression(text)
        results[text] = [
            ts(expression, window, instant) for instant in sorted(expectations)
        ]
    return results


@pytest.fixture(scope="module")
def window() -> EventWindow:
    return section_31_history()


def test_sec31_set_oriented_timelines(benchmark, window):
    results = benchmark(evaluate_all, window)

    traces = [
        ts_trace(
            parse_expression(text), window, instants=sorted(expectations), label=text
        )
        for text, expectations in PAPER_TIMELINES
    ]
    print()
    print(
        render_traces(
            traces,
            title="§3.1 — set-oriented operator timelines "
            "(history: create@t1, create@t2, modify@t3)",
        )
    )

    for text, expectations in PAPER_TIMELINES:
        expected = [expectations[instant] for instant in sorted(expectations)]
        assert results[text] == expected, text
