"""X4 — rule-processing modes on the stock workload.

Chimera's rule processing is parameterized by the EC coupling mode (immediate
vs. deferred) and the event-consumption mode (consuming vs. preserving); the
composite-event extension deliberately leaves those semantics untouched
(paper §1, design principle 3).  This bench runs the same simulated business
days under the four combinations of a monitoring rule and reports transaction
throughput, rule considerations and rule executions — showing that coupling
moves *when* the work happens and consumption changes *how much* history each
consideration sees, while the underlying event detection stays identical.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.workloads.stock import StockScenario

DAYS = 3
OPERATIONS_PER_DAY = 40

MONITOR_RULE_TEMPLATE = """
define {coupling} {consumption} monitorQty for stock
events modify(quantity)
condition stock(S), occurred(modify(stock.quantity), S)
action modify(stock.onorder, S, S.onorder + 1)
end
"""

MODES = [
    ("immediate", "consuming"),
    ("immediate", "preserving"),
    ("deferred", "consuming"),
    ("deferred", "preserving"),
]


def run_mode(coupling: str, consumption: str) -> dict[str, float]:
    scenario = StockScenario(items=15, shelf_products=5, seed=77, install_rules=False)
    scenario.database.define_rule(
        MONITOR_RULE_TEMPLATE.format(coupling=coupling, consumption=consumption)
    )
    start = time.perf_counter()
    scenario.run_days(DAYS, OPERATIONS_PER_DAY)
    elapsed = time.perf_counter() - start
    stats = scenario.database.rule_statistics()["monitorQty"]
    commit_considerations = sum(
        1
        for record in scenario.database.considerations
        if record.rule_name == "monitorQty" and record.phase == "commit"
    )
    onorder_total = sum(
        obj.get("onorder") or 0 for obj in scenario.database.select("stock")
    )
    return {
        "elapsed": elapsed,
        "considered": stats["considered"],
        "executed": stats["executed"],
        "at_commit": commit_considerations,
        "onorder_total": onorder_total,
    }


@pytest.fixture(scope="module")
def mode_results():
    return {
        (coupling, consumption): run_mode(coupling, consumption)
        for coupling, consumption in MODES
    }


def test_x4_rule_processing_modes(benchmark, mode_results):
    benchmark(run_mode, "immediate", "consuming")

    operations = DAYS * OPERATIONS_PER_DAY
    rows = [
        [
            coupling,
            consumption,
            result["considered"],
            result["executed"],
            result["at_commit"],
            result["onorder_total"],
            f"{operations / result['elapsed']:,.0f} op/s",
        ]
        for (coupling, consumption), result in mode_results.items()
    ]
    print()
    print(
        render_table(
            [
                "coupling",
                "consumption",
                "considerations",
                "executions",
                "at commit",
                "monitor updates",
                "throughput",
            ],
            rows,
            title=f"X4 — coupling and consumption modes ({DAYS} days x {OPERATIONS_PER_DAY} operations)",
        )
    )

    immediate_consuming = mode_results[("immediate", "consuming")]
    deferred_consuming = mode_results[("deferred", "consuming")]
    immediate_preserving = mode_results[("immediate", "preserving")]

    # Immediate rules are considered during the transaction, deferred ones only
    # at commit: every deferred consideration happens in the commit phase.
    assert deferred_consuming["at_commit"] == deferred_consuming["considered"]
    assert immediate_consuming["at_commit"] < immediate_consuming["considered"]
    # Deferred processing batches the day's updates into (at most) one
    # consideration per transaction.
    assert deferred_consuming["considered"] <= DAYS * 2
    assert immediate_consuming["considered"] > deferred_consuming["considered"]
    # Consuming vs. preserving does not change how often the rule runs, only
    # the window its condition observes — with this per-object counter the
    # preserving variant re-counts the whole transaction at every execution.
    assert immediate_preserving["onorder_total"] >= immediate_consuming["onorder_total"]
    # Every mode detected quantity updates and did some work.
    assert all(result["executed"] > 0 for result in mode_results.values())
