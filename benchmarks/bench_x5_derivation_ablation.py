"""X5 (ablation) — the corrected precedence derivation rule vs. the literal reading.

DESIGN.md note 3: reading Fig. 6 as "a variation of ``E1 < E2`` propagates,
with its sign, only to ``E2``" is unsound — a new right-operand occurrence can
flip a precedence either way, and when the right operand contains a negation
even a left-operand occurrence can activate it.  The shipped implementation
uses a corrected, conservative rule.

This ablation quantifies the trade-off on a precedence- and negation-heavy
subscription pool:

* the *literal* rule skips more ts recomputations but **misses triggerings**
  (unsound);
* the *corrected* rule skips fewer recomputations and matches the naive
  detector's triggerings exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines.naive import NaiveDetector, Subscription, _DetectorBase
from repro.core.expressions import (
    EventExpression,
    InstanceNegation,
    InstancePrecedence,
    Primitive,
    SetNegation,
    SetPrecedence,
)
from repro.core.optimization import (
    RecomputationFilter,
    Scope,
    Sign,
    Variation,
    simplify_variations,
)
from repro.workloads.generator import EventStreamGenerator, ExpressionGenerator

SUBSCRIPTIONS = 24
BLOCKS = 200


# ---------------------------------------------------------------------------
# The "literal Fig. 6" derivation: precedence propagates the requested sign to
# its right operand only.  Implemented here (not in the library) because it is
# unsound; the bench demonstrates why.
# ---------------------------------------------------------------------------


def literal_derive(
    expression: EventExpression, sign: Sign = Sign.POSITIVE, scope: Scope = Scope.SET
):
    if isinstance(expression, Primitive):
        return {Variation(expression.event_type, sign, scope)}
    if isinstance(expression, (SetNegation, InstanceNegation)):
        next_scope = Scope.OBJECT if isinstance(expression, InstanceNegation) else scope
        return literal_derive(expression.operand, sign.flipped(), next_scope)
    if isinstance(expression, (SetPrecedence, InstancePrecedence)):
        next_scope = (
            Scope.OBJECT if isinstance(expression, InstancePrecedence) else scope
        )
        return literal_derive(expression.right, sign, next_scope)
    next_scope = Scope.OBJECT if expression.is_instance_oriented else scope
    left, right = expression.children()
    return literal_derive(left, sign, next_scope) | literal_derive(
        right, sign, next_scope
    )


class LiteralRecomputationFilter(RecomputationFilter):
    """A V(E) filter built with the literal (unsound) derivation rule."""

    def __init__(self, expression: EventExpression) -> None:
        self.expression = expression
        self.variations = simplify_variations(literal_derive(expression))
        self._positive_types = tuple(
            variation.event_type
            for variation in self.variations
            if variation.sign.includes_positive()
        )
        self._match_cache = {}
        # Unbound-schema matching (exact types only), like the base filter
        # before bind_schema — the ablation streams use flat classes.
        self._schema = None
        self._cached_schema_version = 0
        self.checks = 0
        self.skipped = 0


class _AblationDetector(_DetectorBase):
    def __init__(self, subscriptions, filter_class):
        super().__init__(subscriptions)
        self._filters = {
            subscription.name: filter_class(subscription.expression)
            for subscription in subscriptions
        }

    def _should_evaluate(self, subscription, batch):
        return self._filters[subscription.name].needs_recomputation(batch)


def build_workload():
    expressions = ExpressionGenerator(
        seed=55, precedence_weight=3.0, negation_weight=2.0, instance_probability=0.15
    ).expressions(SUBSCRIPTIONS, operators=3)
    stream = EventStreamGenerator(seed=56, events_per_block=2).blocks(BLOCKS)
    return expressions, stream


def run(detector_factory, expressions, stream):
    detector = detector_factory(
        [Subscription(f"r{i}", expression) for i, expression in enumerate(expressions)]
    )
    report = detector.feed_stream(stream)
    return detector, report


@pytest.fixture(scope="module")
def ablation_results():
    expressions, stream = build_workload()
    results = {}
    results["naive (ground truth)"] = run(NaiveDetector, expressions, stream)[1]
    results["corrected V(E) (shipped)"] = run(
        lambda subs: _AblationDetector(subs, RecomputationFilter), expressions, stream
    )[1]
    results["literal Fig. 6 rule (unsound)"] = run(
        lambda subs: _AblationDetector(subs, LiteralRecomputationFilter),
        expressions,
        stream,
    )[1]
    return results


def test_x5_derivation_rule_ablation(benchmark, ablation_results):
    expressions, stream = build_workload()

    def detect_with_corrected_rule():
        detector = _AblationDetector(
            [Subscription(f"r{i}", e) for i, e in enumerate(expressions)],
            RecomputationFilter,
        )
        return detector.feed_stream(stream).triggerings

    benchmark(detect_with_corrected_rule)

    truth = ablation_results["naive (ground truth)"].triggerings
    rows = [
        [
            name,
            report.ts_computations,
            report.filter_skips,
            report.triggerings,
            truth - report.triggerings,
        ]
        for name, report in ablation_results.items()
    ]
    print()
    print(
        render_table(
            ["strategy", "ts computations", "skipped", "triggerings", "missed"],
            rows,
            title=(
                f"X5 — derivation-rule ablation "
                f"({SUBSCRIPTIONS} precedence/negation-heavy subscriptions, {BLOCKS} blocks)"
            ),
        )
    )

    corrected = ablation_results["corrected V(E) (shipped)"]
    literal = ablation_results["literal Fig. 6 rule (unsound)"]
    # The shipped rule is sound: it detects exactly what the naive detector does.
    assert corrected.triggerings == truth
    # It still skips a useful amount of work.
    assert corrected.filter_skips > 0
    # The literal reading skips at least as much work but misses triggerings on
    # this workload — which is precisely why it was corrected.
    assert literal.filter_skips >= corrected.filter_skips
    assert literal.triggerings < truth
