"""P1 — §4.3 algebraic laws checked over randomized histories.

The paper claims that De Morgan's rules, commutativity, associativity,
distributivity and the factoring of precedence hold for the ts calculus.  This
bench evaluates every registered law over a batch of random histories and
instants, reports the pass rate per law (which must be 100% at each law's
stated guarantee level), and measures the cost of that verification.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.expressions import Primitive
from repro.core.laws import LAWS, check_law
from repro.workloads.generator import EventStreamGenerator, event_type_universe
from repro.events.event_base import EventWindow

EVENT_TYPES = event_type_universe(classes=2, attributes_per_class=1)
OPERANDS = [Primitive(event_type) for event_type in EVENT_TYPES[:3]]
HISTORIES = 20
INSTANTS_PER_HISTORY = 6


def build_histories() -> list[EventWindow]:
    windows = []
    for seed in range(HISTORIES):
        generator = EventStreamGenerator(
            event_types=EVENT_TYPES, seed=seed, events_per_block=2
        )
        occurrences = [occ for block in generator.blocks(8) for occ in block]
        windows.append(EventWindow.of(occurrences))
    return windows


def check_all_laws(windows: list[EventWindow]) -> dict[str, tuple[int, int]]:
    """Return per-law (checks, holds) counts."""
    outcome: dict[str, tuple[int, int]] = {}
    for law in LAWS:
        checks = 0
        holds = 0
        for window in windows:
            latest = window.latest_timestamp() or 1
            step = max(1, latest // INSTANTS_PER_HISTORY)
            for instant in range(1, latest + 2, step):
                result = check_law(law, OPERANDS[: law.arity], window, instant)
                checks += 1
                holds += int(result.holds)
        outcome[law.name] = (checks, holds)
    return outcome


def test_sec43_algebraic_laws(benchmark):
    windows = build_histories()
    outcome = benchmark(check_all_laws, windows)

    rows = []
    for law in LAWS:
        checks, holds = outcome[law.name]
        rows.append(
            [
                law.name,
                law.description,
                law.guarantee,
                f"{holds}/{checks}",
            ]
        )
    print()
    print(
        render_table(
            ["law", "identity", "guarantee", "holds"],
            rows,
            title="§4.3 — algebraic laws over randomized histories",
        )
    )

    for law in LAWS:
        checks, holds = outcome[law.name]
        assert checks > 0
        assert holds == checks, f"{law.name} violated on {checks - holds} instances"
