"""X2 — detector styles on the shared fragment (ts calculus vs. related work).

The related-work section of the paper contrasts Chimera's recomputation-based
calculus with Ode's automaton detection and Snoop's occurrence trees.  On the
fragment all three share (negation-free, set-oriented conjunction /
disjunction / sequence), this bench feeds the same synthetic stream to:

* the ts-calculus detector with the V(E) filter (this paper) — once over
  materialized window copies (the labelled baseline implementation) and once
  over zero-copy bounded views (the PR-1 window structure on otherwise
  identical detection logic),
* the Ode-style incremental automaton baseline,
* the Snoop-style occurrence-tree baseline,

checks that they agree on the number of detections, and reports their relative
throughput (events per second).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.baselines import (
    AutomatonDetector,
    FilteredDetector,
    SnoopTreeDetector,
    Subscription,
    ViewFilteredDetector,
)
from repro.workloads.generator import EventStreamGenerator, ExpressionGenerator

SUBSCRIPTIONS = 12
BLOCKS = 200


@pytest.fixture(scope="module")
def workload():
    expressions = ExpressionGenerator(
        seed=21, allow_negation=False, instance_probability=0.0, precedence_weight=0.7
    ).expressions(SUBSCRIPTIONS, operators=3)
    stream = EventStreamGenerator(seed=22, events_per_block=3).blocks(BLOCKS)
    return expressions, stream


def build_detectors(expressions):
    named = [(f"r{i}", expression) for i, expression in enumerate(expressions)]
    return {
        "ts calculus + V(E), window copies": FilteredDetector(
            [Subscription(name, expression) for name, expression in named]
        ),
        "ts calculus + V(E), zero-copy views": ViewFilteredDetector(
            [Subscription(name, expression) for name, expression in named]
        ),
        "automaton (Ode-style)": AutomatonDetector(named),
        "occurrence tree (Snoop-style)": SnoopTreeDetector(named),
    }


def test_x2_detector_comparison(benchmark, workload):
    expressions, stream = workload
    total_events = sum(len(block) for block in stream)

    results = {}
    for name, detector in build_detectors(expressions).items():
        start = time.perf_counter()
        report = detector.feed_stream(stream)
        elapsed = time.perf_counter() - start
        results[name] = (report.triggerings, elapsed)

    calculus_detector = build_detectors(expressions)[
        "ts calculus + V(E), zero-copy views"
    ]

    def run_calculus():
        calculus_detector.reset()
        return calculus_detector.feed_stream(stream).triggerings

    benchmark(run_calculus)

    rows = [
        [
            name,
            triggerings,
            f"{elapsed * 1000:.1f} ms",
            f"{total_events / elapsed:,.0f} ev/s",
        ]
        for name, (triggerings, elapsed) in results.items()
    ]
    print()
    print(
        render_table(
            ["detector", "detections", "wall clock", "throughput"],
            rows,
            title=f"X2 — {SUBSCRIPTIONS} subscriptions over {total_events} events",
        )
    )

    detections = {triggerings for triggerings, _ in results.values()}
    assert len(detections) == 1, f"detectors disagree: {results}"
    assert detections.pop() > 0
