"""X14 — socket shard transport behind the ShardTransport seam.

PR 10 extracts the delta-shipping plumbing of the process shard pool into a
``ShardTransport`` interface (pickle frames / shm-ring descriptors /
length-prefixed socket frames) and adds the TCP implementation: an asyncio
coordinator endpoint with localhost workers spawned by the pool, or remote
workers started via ``chimera-events worker``.  This bench shows:

* **the socket path is priced** — per-block delta-encode cost of frame rows
  vs ring rows vs snapshot pickling on the X13 check-heavy grid (frame
  encoding pays a per-delta byte copy the ring avoids, but stays within a
  small factor of pickle on the localhost path);
* **the trip protocol survives the seam** — structural facts exact per
  transport: every rule definition shipped exactly once per
  ``definition_order`` version, exactly one coordinator message per
  consulted worker per trip, each transport's deltas riding only its own
  encoding, zero reconnects in an undisturbed run;
* **reconnects are absorbed, not absorbed-into-wrongness** — a tcp worker
  bounced mid-run re-syncs defs + a fresh mirror and the run's triggering
  counters and consideration sequences stay byte-identical to an
  uninterrupted run;
* **behavioral invisibility** — every grid point asserts identical
  triggering decisions, selections and stats across the single table, the
  serial coordinator and all three process transports.

Run as a script to execute the full sweep and write machine-readable
results to ``BENCH_PR10.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x14_socket_transport.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the structural acceptance criteria.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.workloads.socket_transport import (
    measure_reconnect_resync,
    measure_socket_transport,
    render_x14,
    run_x14_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR10.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR10.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x14_sweeps(smoke=args.smoke)
    print(render_x14(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    print(
        f"headline: frame encoding vs pickle {headline['frame_encode_vs_pickle']}x, "
        f"vs shm ring {headline['frame_encode_vs_shm']}x; defs shipped once "
        f"per version on every transport: {headline['defs_shipped_once']}; "
        f"reconnect re-shipped {headline['reconnect_resync_defs']} defs with "
        f"byte-identical outcomes"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x14_structural_trip_facts_per_transport():
    # measure_socket_transport asserts triggering + selection + stats
    # equivalence itself across the single table, serial, and all three
    # process transports.
    result = measure_socket_transport(
        300, workers=2, blocks=12, warmup_blocks=2, events_per_block=8, shapes=8, reps=2
    )
    for transport, row in result["transports"].items():
        # Definitions ship exactly once per definition_order version: with a
        # stable table that is each rule once, to its single home worker.
        assert row["defs_shipped"] == result["rules"], (transport, row)
        # One coordinator message per consulted worker per trip.
        assert row["worker_round_trips"] == row["parallel_batches"], (transport, row)
        assert row["reconnects"] == 0, (transport, row)
    pickled = result["transports"]["pickle"]
    assert pickled["deltas_pickled"] > 0, pickled
    assert pickled["deltas_shm"] == pickled["deltas_framed"] == 0, pickled
    shm = result["transports"]["shm"]
    assert shm["deltas_shm"] > 0 and shm["deltas_framed"] == 0, shm
    tcp = result["transports"]["tcp"]
    assert tcp["deltas_framed"] > 0, tcp
    assert tcp["deltas_pickled"] == tcp["deltas_shm"] == 0, tcp
    assert tcp["frame_rows_inline"] > 0 and tcp["frame_rows_fallback"] == 0, tcp


def test_x14_reconnect_resyncs_and_outcomes_hold():
    result = measure_reconnect_resync(
        rule_count=150, workers=2, blocks=12, events_per_block=6
    )
    assert result["reconnects_uninterrupted"] == 0, result
    assert result["reconnects"] == 1, result
    # The bounced worker's definitions re-ship at their current version.
    assert result["resync_defs"] > 0, result
    assert result["equivalent"] is True, result


if __name__ == "__main__":
    main()
