"""F6/F7 — Fig. 6 derivation rules and Fig. 7 simplification rules.

Regenerates the §5.1 worked example: the derivation of the variation set for a
composite expression over three primitive event types A, B, C, followed by the
Fig. 7 simplification, which must produce the paper's final result
``{ΔA, ΔB, Δ+C}``.  The benchmark measures the static analysis itself (the
analysis runs once per rule definition in the real system).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import parse_expression
from repro.core.optimization import (
    Scope,
    Sign,
    Variation,
    derive_variations,
    format_variations,
    simplify_variations,
    variation_set,
)
from repro.events.event import EventType, Operation

A = EventType(Operation.CREATE, "A")
B = EventType(Operation.CREATE, "B")
C = EventType(Operation.CREATE, "C")

#: The §5.1 example expression (reconstructed — see DESIGN.md): three disjuncts
#: in which A appears both positively and negatively, B positively at the set
#: level and negatively at the object level, and C only positively.
EXAMPLE_EXPRESSION = (
    "(create(A) + create(B)) , (create(C) + -create(A)) , "
    "((create(A) += create(C)) + -=(create(B) += create(A)))"
)


def run_static_analysis():
    expression = parse_expression(EXAMPLE_EXPRESSION)
    derived = derive_variations(expression)
    simplified = simplify_variations(derived)
    return expression, derived, simplified


def test_fig6_fig7_variation_set(benchmark):
    expression, derived, simplified = benchmark(run_static_analysis)

    print()
    print(f"E = {expression}")
    rows = [[str(variation)] for variation in sorted(derived, key=str)]
    print(render_table(["derived variations (Fig. 6)"], rows))
    rows = [[str(variation)] for variation in sorted(simplified, key=str)]
    print(render_table(["simplified V(E) (Fig. 7)"], rows))
    print(f"V(E) = {format_variations(simplified)}")

    # Fig. 6: the derivation produces eight variations, including the
    # object-scoped ones coming from the instance-oriented sub-expressions.
    assert derived == {
        Variation(A, Sign.POSITIVE, Scope.SET),
        Variation(B, Sign.POSITIVE, Scope.SET),
        Variation(C, Sign.POSITIVE, Scope.SET),
        Variation(A, Sign.NEGATIVE, Scope.SET),
        Variation(A, Sign.POSITIVE, Scope.OBJECT),
        Variation(C, Sign.POSITIVE, Scope.OBJECT),
        Variation(B, Sign.NEGATIVE, Scope.OBJECT),
        Variation(A, Sign.NEGATIVE, Scope.OBJECT),
    }
    # Fig. 7: simplification yields the paper's V(E) = {ΔA, ΔB, Δ+C}.
    assert simplified == {
        Variation(A, Sign.BOTH, Scope.SET),
        Variation(B, Sign.BOTH, Scope.SET),
        Variation(C, Sign.POSITIVE, Scope.SET),
    }
    assert variation_set(parse_expression(EXAMPLE_EXPRESSION)) == simplified
    assert format_variations(simplified) == "{Δ+create(C), Δcreate(A), Δcreate(B)}"
