"""F1/F2 — Fig. 1 (composition operators) and Fig. 2 (operator dimensions).

Regenerates the operator inventory: name, set-oriented symbol,
instance-oriented symbol, priority level and design dimension — and checks it
against the paper's table.  The benchmark measures parsing a representative
expression with every operator, which is the operation the table governs.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import OPERATOR_TABLE, parse_expression
from repro.core.expressions import Dimension


EVERY_OPERATOR_EXPRESSION = (
    "modify(show.quantity) + -("
    "(create(stockOrder) < modify(stockOrder.delquantity)) , "
    "(create(stock) += (-=delete(stock) ,= (modify(stock.minquantity) <= modify(stock.quantity)))))"
)


def operator_rows() -> list[list[str]]:
    return [
        [
            info.name,
            info.set_symbol,
            info.instance_symbol,
            str(info.priority),
            info.dimension.value,
        ]
        for info in OPERATOR_TABLE
    ]


def test_fig1_fig2_operator_table(benchmark):
    parsed = benchmark(parse_expression, EVERY_OPERATOR_EXPRESSION)

    rows = operator_rows()
    print()
    print(
        render_table(
            ["operator", "set-oriented", "instance-oriented", "priority", "dimension"],
            rows,
            title="Fig. 1 / Fig. 2 — composition operators and their dimensions",
        )
    )

    # Fig. 1: four operators, listed in decreasing priority, instance symbols
    # are the set symbols suffixed with '='.
    assert [row[0] for row in rows] == [
        "negation", "conjunction", "precedence", "disjunction"
    ]
    assert [row[1] for row in rows] == ["-", "+", "<", ","]
    assert [row[2] for row in rows] == ["-=", "+=", "<=", ",="]
    priorities = [int(row[3]) for row in rows]
    assert priorities == sorted(priorities, reverse=True)
    # Fig. 2: precedence is the temporal dimension, the rest are boolean.
    dimensions = {info.name: info.dimension for info in OPERATOR_TABLE}
    assert dimensions["precedence"] is Dimension.TEMPORAL
    assert all(
        dimensions[name] is Dimension.BOOLEAN
        for name in ("negation", "conjunction", "disjunction")
    )
    # The expression exercising every operator parses and round-trips.
    assert parse_expression(str(parsed)) == parsed
