"""Bench regression gate: re-read smoke-run JSON and assert the headlines.

CI runs every benchmark in ``--smoke`` mode with ``--out BENCH_*_smoke.json``
and then invokes this script over the written files::

    python benchmarks/check_bench_guard.py BENCH_X7_smoke.json BENCH_X8_smoke.json ...

Each file's ``benchmark`` key selects a checker; the thresholds live in
``benchmarks/guard_baselines.json``.  Two classes of invariant are enforced:

* **structural** — exact, noise-free properties a regression would break
  outright: every grid point still asserted behavioral equivalence, batched
  dispatch trips equal ``ceil(blocks / batch)`` (trips scale with trips, not
  blocks), per-block worker round trips fall monotonically with the batch
  size;
* **timing** — headline speedups (routed planning beats the full scan,
  sharded/coordinator planning holds its margin, dispatch overhead stays
  bounded and amortizes), each relaxed by ``timing_tolerance`` because
  shared CI runners are noisy.

The script exits non-zero on the first file whose invariants fail, printing
one line per check so the CI log reads as a report.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BASELINES_FILE = Path(__file__).resolve().parent / "guard_baselines.json"


class GuardFailure(Exception):
    """One failed invariant (message carries the evidence)."""


def _check(condition: bool, message: str, failures: list[str]) -> None:
    status = "ok  " if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def _relax(threshold: float, tolerance: float) -> float:
    """A minimum threshold relaxed by the timing tolerance."""
    return threshold * (1.0 - tolerance)


def _check_equivalence(results: dict, failures: list[str]) -> None:
    equivalence = results.get("equivalence", {})
    _check(
        equivalence.get("checked") is True,
        "behavioral equivalence was asserted per grid point",
        failures,
    )


def check_x7(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    minimum = _relax(limits["min_planning_speedup"], tolerance)
    for row in results["rule_scaling"]:
        _check(
            row["planning_speedup"] >= minimum,
            f"{row['rules']} rules: routed planning beats the full scan "
            f"({row['planning_speedup']}x >= {minimum:.2f}x)",
            failures,
        )
    bulk_minimum = _relax(limits["min_bulk_ingest_speedup"], tolerance)
    for row in results["ingestion"]:
        _check(
            row["speedup"] >= bulk_minimum,
            f"batch {row['batch_size']}: bulk extend holds its margin "
            f"({row['speedup']}x >= {bulk_minimum:.2f}x)",
            failures,
        )
    _check_equivalence(results, failures)


def check_x8(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    minimum = _relax(limits["min_planning_speedup"], tolerance)
    for row in results["shard_scaling"]:
        _check(
            row["planning_speedup"] >= minimum,
            f"{row['rules']} rules: sharded planning holds its margin "
            f"({row['planning_speedup']}x >= {minimum:.2f}x)",
            failures,
        )
    _check_equivalence(results, failures)


def check_x9(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    minimum = _relax(limits["min_planning_speedup"], tolerance)
    overhead_cap = limits["max_dispatch_overhead_us_per_block"] * (1.0 + tolerance)
    for row in results["process_scaling"]:
        _check(
            row["planning_speedup"] >= minimum,
            f"{row['rules']} rules: coordinator planning holds its margin "
            f"({row['planning_speedup']}x >= {minimum:.2f}x)",
            failures,
        )
        overhead = row["process_transport"]["dispatch_overhead_us_per_block"]
        _check(
            overhead <= overhead_cap,
            f"{row['rules']} rules: dispatch overhead bounded "
            f"({overhead} µs/block <= {overhead_cap:.0f})",
            failures,
        )
    _check_equivalence(results, failures)


def check_x10(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    for grid_point in results["dispatch_amortization"]:
        rows = sorted(grid_point["rows"], key=lambda row: row["batch_blocks"])
        for row in rows:
            _check(
                row["trips"] == row["expected_trips"],
                f"batch {row['batch_blocks']}: trips scale with trips, "
                f"not blocks ({row['trips']} trips == "
                f"ceil({row['blocks']}/{row['batch_blocks']}))",
                failures,
            )
            if row["batch_blocks"] > 1:
                _check(
                    row["trips"] < row["blocks"],
                    f"batch {row['batch_blocks']}: fewer trips than blocks "
                    f"({row['trips']} < {row['blocks']})",
                    failures,
                )
        per_block = [row["round_trips_per_block"] for row in rows]
        _check(
            all(later < earlier for earlier, later in zip(per_block, per_block[1:])),
            f"per-block round trips fall monotonically with the batch size "
            f"({' > '.join(str(value) for value in per_block)})",
            failures,
        )
        base = rows[0]
        best = rows[-1]
        if base["batch_blocks"] == 1 and base["dispatch_overhead_us_per_block"] > 0:
            ratio_cap = limits["max_overhead_ratio_vs_batch_1"]
            ratio = (
                best["dispatch_overhead_us_per_block"]
                / base["dispatch_overhead_us_per_block"]
            )
            _check(
                ratio <= ratio_cap * (1.0 + tolerance),
                f"batch {best['batch_blocks']} dispatch overhead amortizes "
                f"({ratio:.2f}x of batch 1 <= {ratio_cap * (1.0 + tolerance):.2f}x)",
                failures,
            )
    _check_equivalence(results, failures)


def check_x11(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    minimum = _relax(limits["min_check_speedup"], tolerance)
    for row in results["kernel"]:
        _check(
            row["check_speedup"] >= minimum,
            f"{row['rules']} rules: compiled kernel holds its margin "
            f"({row['check_speedup']}x >= {minimum:.2f}x)",
            failures,
        )
    process = results["process"]
    _check(
        process["check_speedup"] >= minimum,
        f"X9 grid point ({process['rules']} rules, {process['workers']} "
        f"workers): compiled kernel holds its margin "
        f"({process['check_speedup']}x >= {minimum:.2f}x)",
        failures,
    )
    sweep = results["sweep"]
    _check(
        sweep.get("identical") is True and sweep.get("runs", 0) > 0,
        f"compiled x mode x batch sweep byte-identical ({sweep.get('runs')} runs)",
        failures,
    )
    _check(
        len(sweep.get("batch_sizes", [])) >= 4 and len(sweep.get("modes", [])) == 3,
        "sweep covered every coordinator mode at multiple batch sizes",
        failures,
    )
    _check_equivalence(results, failures)


def check_x12(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    strict_cap = limits["max_overhead_pct"] * (1.0 + tolerance)
    # An overhead measurement is only as precise as its arms are long:
    # min-of-reps converges to well under 1% once an arm runs for seconds
    # (the full X12 grid) but stays at several percent of scheduler jitter —
    # either sign — on sub-second smoke arms and on processes rows, whose
    # cost is dominated by worker round-trip latency.  Those rows get a
    # documented looser cap and lean on the structural snapshot checks
    # below as the primary acceptance.
    loose_limit = limits.get("max_loose_overhead_pct", limits["max_overhead_pct"])
    loose_cap = loose_limit * (1.0 + tolerance)
    precise_floor_ms = limits.get("precise_off_ms", 0)
    for row in results["x7_grid"] + results["x10_grid"]:
        precise = row["shard_mode"] != "processes" and row["off_ms"] >= precise_floor_ms
        cap = strict_cap if precise else loose_cap
        _check(
            row["overhead_pct"] <= cap,
            f"{row['rules']} rules, {row['shard_mode']} x batch "
            f"{row['batch_blocks']}: instrumentation overhead bounded "
            f"({row['overhead_pct']}% <= {cap:.2f}%)",
            failures,
        )
        _check(
            row["span_count"] > 0,
            f"{row['rules']} rules, {row['shard_mode']} x batch "
            f"{row['batch_blocks']}: enabled arm recorded spans "
            f"({row['span_count']} > 0)",
            failures,
        )
    snapshot = results["snapshot"]
    _check(
        snapshot.get("counters_match_stats") is True,
        "snapshot counters byte-equal to the live stats sources",
        failures,
    )
    _check(
        snapshot.get("worker_deltas_merged") is True,
        "process-worker metric deltas merged into the coordinator snapshot",
        failures,
    )
    _check_equivalence(results, failures)


def check_x13(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    minimum = _relax(limits["min_delta_encode_speedup"], tolerance)
    for grid_point in results["transport"]:
        shm = grid_point["transports"]["shm"]
        pickled = grid_point["transports"]["pickle"]
        flavor = "payload-bearing" if grid_point["payloads"] else "payload-free"
        _check(
            shm["deltas_shm"] > 0 and shm["deltas_pickled"] == 0,
            f"{flavor}: shm arm shipped every delta through the ring "
            f"({shm['deltas_shm']} shm / {shm['deltas_pickled']} pickled)",
            failures,
        )
        _check(
            pickled["deltas_shm"] == 0 and pickled["deltas_pickled"] > 0,
            f"{flavor}: pickle arm never touched the ring "
            f"({pickled['deltas_pickled']} pickled)",
            failures,
        )
        if grid_point["payloads"]:
            _check(
                shm["shm_rows_fallback"] > 0 and shm["shm_rows_inline"] == 0,
                f"{flavor}: every row crossed via the per-row fallback "
                f"({shm['shm_rows_fallback']} fallback rows)",
                failures,
            )
        else:
            _check(
                shm["shm_rows_inline"] > 0 and shm["shm_rows_fallback"] == 0,
                f"{flavor}: every row rode the ring inline "
                f"({shm['shm_rows_inline']} inline rows)",
                failures,
            )
            _check(
                grid_point["delta_encode_speedup"] >= minimum,
                f"{flavor}: row encoding beats snapshot pickling "
                f"({grid_point['delta_encode_speedup']}x >= {minimum:.2f}x)",
                failures,
            )
    adaptivity = results["adaptivity"]
    adaptive = adaptivity["arms"]["adaptive"]
    _check(
        adaptive["widened"] >= 1 and adaptive["shrunk"] >= 1,
        f"controller widened under backlog and shrank when it drained "
        f"({adaptive['widened']} widen / {adaptive['shrunk']} shrink steps)",
        failures,
    )
    _check(
        adaptive["final_bound"] == 1,
        f"controller settled back to per-block trips "
        f"(final bound {adaptive['final_bound']})",
        failures,
    )
    _check(
        adaptive["idle_trips"] == adaptivity["idle_blocks"],
        f"idle phase never coalesced ({adaptive['idle_trips']} trips over "
        f"{adaptivity['idle_blocks']} blocks)",
        failures,
    )
    _check(
        adaptive["backlog_trips"] < adaptivity["backlog_blocks"],
        f"backlog drained in batched trips ({adaptive['backlog_trips']} trips "
        f"< {adaptivity['backlog_blocks']} blocks)",
        failures,
    )
    latency_cap = limits["max_idle_latency_ratio"] * (1.0 + tolerance)
    _check(
        adaptivity["idle_latency_ratio"] <= latency_cap,
        f"adaptive idle latency tracks static-1 "
        f"({adaptivity['idle_latency_ratio']} <= {latency_cap:.2f})",
        failures,
    )
    throughput_floor = _relax(limits["min_backlog_throughput_ratio"], tolerance)
    _check(
        adaptivity["backlog_throughput_ratio"] >= throughput_floor,
        f"adaptive backlog throughput tracks static-8 "
        f"({adaptivity['backlog_throughput_ratio']} >= {throughput_floor:.2f})",
        failures,
    )
    _check_equivalence(results, failures)


def check_x14(
    results: dict, limits: dict, tolerance: float, failures: list[str]
) -> None:
    grid = results["transport"]
    for transport, row in grid["transports"].items():
        _check(
            row["defs_shipped"] == grid["rules"],
            f"{transport}: every definition shipped exactly once per version "
            f"({row['defs_shipped']} defs == {grid['rules']} rules)",
            failures,
        )
        _check(
            row["worker_round_trips"] == row["parallel_batches"],
            f"{transport}: one coordinator message per consulted worker per "
            f"trip ({row['worker_round_trips']} round trips == "
            f"{row['parallel_batches']} worker-batches)",
            failures,
        )
        _check(
            row["reconnects"] == 0,
            f"{transport}: undisturbed run absorbed no reconnects",
            failures,
        )
    pickled = grid["transports"]["pickle"]
    _check(
        pickled["deltas_pickled"] > 0
        and pickled["deltas_shm"] == 0
        and pickled["deltas_framed"] == 0,
        f"pickle arm shipped only pickled snapshots "
        f"({pickled['deltas_pickled']} deltas)",
        failures,
    )
    shm = grid["transports"]["shm"]
    _check(
        shm["deltas_shm"] > 0 and shm["deltas_framed"] == 0,
        f"shm arm shipped only ring descriptors ({shm['deltas_shm']} deltas)",
        failures,
    )
    tcp = grid["transports"]["tcp"]
    _check(
        tcp["deltas_framed"] > 0
        and tcp["deltas_pickled"] == 0
        and tcp["deltas_shm"] == 0,
        f"tcp arm shipped only row frames ({tcp['deltas_framed']} deltas)",
        failures,
    )
    _check(
        tcp["frame_rows_inline"] > 0 and tcp["frame_rows_fallback"] == 0,
        f"payload-free rows rode the frame encoding inline "
        f"({tcp['frame_rows_inline']} rows)",
        failures,
    )
    minimum = _relax(limits["min_frame_encode_vs_pickle"], tolerance)
    _check(
        grid["frame_encode_vs_pickle"] >= minimum,
        f"frame encoding stays within its pickle budget "
        f"({grid['frame_encode_vs_pickle']}x >= {minimum:.2f}x)",
        failures,
    )
    reconnect = results["reconnect"]
    _check(
        reconnect["reconnects"] == 1 and reconnect["reconnects_uninterrupted"] == 0,
        f"exactly the injected reconnect was absorbed "
        f"({reconnect['reconnects']} vs {reconnect['reconnects_uninterrupted']})",
        failures,
    )
    _check(
        reconnect["resync_defs"] > 0,
        f"the bounced worker's definitions re-shipped "
        f"({reconnect['resync_defs']} defs)",
        failures,
    )
    _check(
        reconnect["equivalent"] is True,
        "bounced run byte-identical to the uninterrupted run "
        "(triggerings + consideration order)",
        failures,
    )
    _check_equivalence(results, failures)


CHECKERS = {
    "x7_rule_scaling": check_x7,
    "x8_shard_scaling": check_x8,
    "x9_process_scaling": check_x9,
    "x10_dispatch_amortization": check_x10,
    "x11_compiled_check": check_x11,
    "x12_observability_overhead": check_x12,
    "x13_transport_adaptivity": check_x13,
    "x14_socket_transport": check_x14,
}


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_bench_guard.py BENCH_RESULTS.json [...]", file=sys.stderr)
        return 2
    baselines = json.loads(BASELINES_FILE.read_text())
    tolerance = baselines.get("timing_tolerance", 0.0)
    failures: list[str] = []
    for path in argv:
        results = json.loads(Path(path).read_text())
        name = results.get("benchmark")
        checker = CHECKERS.get(name)
        print(f"{path} ({name}):")
        if checker is None:
            _check(False, f"unknown benchmark kind {name!r}", failures)
            continue
        checker(results, baselines.get(name, {}), tolerance, failures)
    if failures:
        print(f"\nbench guard: {len(failures)} invariant(s) failed", file=sys.stderr)
        for message in failures:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print("\nbench guard: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
