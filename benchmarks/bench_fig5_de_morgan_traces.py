"""F5 — Fig. 5: ts traces showing De Morgan's rule with time stamps.

The paper's Fig. 5 plots, over a history of A/B/C occurrences, the functions
ts(A), ts(-A), ts(B), ts(A , B), ts(-(A , B)) and ts(-A + -B), observing that
the last two coincide everywhere.  This bench regenerates those series as a
text table and asserts the identity at every sampled instant.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_traces, ts_trace
from repro.core import parse_expression, ts
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventWindow

A = EventType(Operation.CREATE, "A")
B = EventType(Operation.CREATE, "B")
C = EventType(Operation.CREATE, "C")


@pytest.fixture(scope="module")
def window() -> EventWindow:
    """A history interleaving occurrences of types A, B and C (C is a bystander)."""
    return EventWindow.of(
        [
            EventOccurrence(1, C, "o1", 1),
            EventOccurrence(2, A, "o1", 2),
            EventOccurrence(3, C, "o2", 4),
            EventOccurrence(4, B, "o2", 5),
            EventOccurrence(5, A, "o3", 7),
            EventOccurrence(6, B, "o1", 8),
            EventOccurrence(7, C, "o3", 9),
        ]
    )


SERIES = [
    ("create(A)", "ts(A)"),
    ("-create(A)", "ts(-A)"),
    ("create(B)", "ts(B)"),
    ("create(A) , create(B)", "ts(A , B)"),
    ("-(create(A) , create(B))", "ts(-(A , B))"),
    ("-create(A) + -create(B)", "ts(-A + -B)"),
]

INSTANTS = list(range(1, 11))


def sample_series(window: EventWindow) -> dict[str, list[int]]:
    return {
        label: [ts(parse_expression(text), window, instant) for instant in INSTANTS]
        for text, label in SERIES
    }


def test_fig5_de_morgan_traces(benchmark, window):
    sampled = benchmark(sample_series, window)

    traces = [
        ts_trace(parse_expression(text), window, instants=INSTANTS, label=label)
        for text, label in SERIES
    ]
    print()
    print(render_traces(traces, title="Fig. 5 — ts traces and the De Morgan identity"))

    # The identity the figure demonstrates: -(A , B) == (-A + -B) everywhere.
    assert sampled["ts(-(A , B))"] == sampled["ts(-A + -B)"]
    # Negation is the mirror image of its operand.
    assert sampled["ts(-A)"] == [-value for value in sampled["ts(A)"]]
    # The disjunction follows the most recent active component.
    assert sampled["ts(A , B)"][4] == 5  # right after B's first occurrence at t5
    assert sampled["ts(A , B)"][9] == 8  # B's latest occurrence wins at the end
