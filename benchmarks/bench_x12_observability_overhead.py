"""X12 — observability overhead: the metrics layer must stay ≤3% end to end.

PR 8 threads one MetricsRegistry through the whole pipeline — pipeline-phase
histograms (trip.plan/dispatch/check/apply, block.check, oodb.commit), the
ingest queue gauge, per-shard candidate counters, and worker-side registries
shipped back as compact deltas on trip replies.  The design contract is that
none of it is allowed to show up in the timings: a disabled registry hands
out shared null instruments, an enabled one keeps every probe off the
per-rule hot loops.  This bench measures the contract:

* **X7-style grid** — the single-table rule-scaling pipeline, instrumented
  vs uninstrumented arms over identical streams and rule pools;
* **X10-style grid** — the 4-shard coordinator across execution modes and
  micro-batch sizes; the processes points also exercise (and structurally
  assert) the cross-process metric-delta merge.

Arms run as interleaved repetitions with min-of-reps per arm, and every grid
point asserts the two arms made byte-identical triggering decisions,
selections and stats — metrics observe, they never steer.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR8.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x12_observability_overhead.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the structural acceptance criteria; the overhead cap itself is
enforced on the written results by ``benchmarks/check_bench_guard.py``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.workloads.observability import (
    measure_overhead,
    render_x12,
    run_x12_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR8.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR8.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x12_sweeps(smoke=args.smoke)
    print(render_x12(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    snapshot = results["snapshot"]
    print(
        f"headline: worst overhead {headline['worst_overhead_pct']}% across "
        f"{headline['points']} grid points; snapshot counters match stats: "
        f"{snapshot['counters_match_stats']}; worker deltas merged: "
        f"{snapshot['worker_deltas_merged']}"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x12_instrumentation_is_behaviorally_invisible():
    # measure_overhead asserts triggering + selection + stats equivalence
    # between the instrumented and uninstrumented arms itself.
    measure_overhead(300, blocks=12, warmup_blocks=2, repetitions=2)


def test_x12_worker_deltas_merge_in_processes_mode():
    row = measure_overhead(
        300,
        shards=2,
        shard_mode="processes",
        batch_blocks=4,
        blocks=12,
        warmup_blocks=2,
        repetitions=2,
    )
    # Structural acceptance criteria: the snapshot folds the stats sources
    # byte-equal and contains worker.* counters merged back from the
    # out-of-process registries.
    assert row["counters_match_stats"], row
    assert row["worker_deltas_merged"], row


def test_x12_spans_are_recorded_when_enabled():
    row = measure_overhead(300, blocks=12, warmup_blocks=2, repetitions=2)
    # The enabled arm must actually measure something (trip/block spans).
    assert row["span_count"] > 0, row


if __name__ == "__main__":
    main()
