"""X7 — trigger planning and ingestion vs rule count (type-routed index).

PR 1 made each triggering check cheap (zero-copy views + incremental memos),
but ``check_after_block`` still visited *every* untriggered rule on every
block and ``EventBase.extend`` maintained its indexes one occurrence at a
time.  This bench quantifies the PR-2 refactor:

* **trigger planning** — deciding which rules a block obliges the Trigger
  Support to visit.  Routed: one ``TriggerPlanner.plan`` over the block's
  type signature (inverted subscription index).  Full scan: the PR-1 loop —
  every untriggered rule, each consulting its own ``V(E)`` filter.  Measured
  dry on the frozen steady state so the figure isolates planning from the
  exact ``ts`` checks, which are the identical set of computations on both
  paths (asserted here and in ``tests/rules/test_planner_equivalence.py``).
  At fixed subscription density (the type universe grows with the rule pool)
  the routed cost should stay roughly flat while the scan grows linearly.
* **end-to-end check cost** — the same comparison including the ``ts``
  checks, as a secondary column (the gap narrows as checking dominates,
  since a bypassed rule's skipped instants are sampled by its next visit).
* **ingestion** — the segmented bulk ``extend`` fast path against the
  historical per-occurrence ``append`` loop, at several batch sizes.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR2.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x7_rule_scaling.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the acceptance criteria: routed planning beats the full scan and stays
roughly flat, bulk ingestion beats the loop, decisions identical.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import render_table
from repro.workloads.rule_scaling import (
    measure_ingestion,
    measure_rule_scaling,
    render_x7,
    run_x7_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR2.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR2.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x7_sweeps(smoke=args.smoke)
    print(render_x7(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    print(
        f"headline: {headline['rules']} rules -> planning {headline['planning_speedup']}x "
        f"(routed {headline['routed_plan_us_per_block']} µs/block vs scan "
        f"{headline['scan_plan_us_per_block']} µs/block)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x7_routed_and_scan_decisions_are_identical():
    # measure_rule_scaling asserts triggering + selection equivalence itself.
    measure_rule_scaling(300, blocks=12, warmup_blocks=2)


def test_x7_planning_flat_vs_linear(benchmark):
    small = measure_rule_scaling(200, blocks=10, warmup_blocks=2)
    large = measure_rule_scaling(1_500, blocks=10, warmup_blocks=2)
    print()
    print(
        render_table(
            ["rules", "routed plan µs/blk", "scan plan µs/blk", "plan speedup"],
            [
                [
                    r["rules"],
                    r["routed_plan_us_per_block"],
                    r["scan_plan_us_per_block"],
                    f"{r['planning_speedup']}x",
                ]
                for r in (small, large)
            ],
            title="X7 (reduced) — planning cost",
        )
    )
    # The index must beat the scan outright at the larger size...
    assert large["planning_speedup"] >= 5.0
    # ...and stay roughly flat while the scan grows with the table: going
    # 200 -> 1500 rules (7.5x) the routed cost may at most triple, while the
    # scan must have grown at least 3x.
    assert large["routed_plan_us_per_block"] <= 3.0 * max(
        1.0, small["routed_plan_us_per_block"]
    )
    assert large["scan_plan_us_per_block"] >= 3.0 * small["scan_plan_us_per_block"]

    from repro.workloads.rule_scaling import (
        ScalingWorkload, build_scaling_rules, build_scaling_universe
    )
    from repro.workloads.generator import EventStreamGenerator

    universe = build_scaling_universe(1_500)
    workload = ScalingWorkload(build_scaling_rules(1_500, universe))
    stream = EventStreamGenerator(
        event_types=universe, seed=5, events_per_block=6
    ).blocks(12)
    for block in stream:
        workload.feed_block(block)
    signatures = [frozenset(o.event_type for o in block) for block in stream]

    def plan_all():
        for signature in signatures:
            workload.support.planner.plan(signature)

    benchmark(plan_all)


def test_x7_bulk_ingestion_not_slower():
    row = measure_ingestion(total_events=40_000, batch_size=1_024)
    # The full run shows >1x; keep head-room for noisy CI boxes.
    assert row["speedup"] >= 0.9, row


if __name__ == "__main__":
    main()
