"""X3 — evaluation cost as a function of expression shape.

The calculus evaluates an expression by recursive descent over its AST, with
primitive look-ups at the leaves and (for instance-oriented sub-expressions) a
lift over the affected objects.  This bench characterizes how the cost of one
``ts`` evaluation grows with:

* the number of operators in a set-oriented expression;
* the operator mix (pure boolean vs. precedence-heavy vs. negation-heavy);
* the granularity (set-oriented vs. instance-oriented sub-expressions).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.core import EvaluationStats, ts
from repro.events.event_base import EventWindow
from repro.workloads.generator import EventStreamGenerator, ExpressionGenerator

SIZES = [1, 2, 4, 8, 16]
MIXES = {
    "boolean (conj/disj)": dict(precedence_weight=0.0, negation_weight=0.0),
    "precedence-heavy": dict(precedence_weight=3.0, negation_weight=0.0),
    "negation-heavy": dict(precedence_weight=0.5, negation_weight=3.0),
    "instance-heavy": dict(precedence_weight=0.5, negation_weight=0.5),
}
EXPRESSIONS_PER_CELL = 10
EVALUATIONS_PER_EXPRESSION = 50


@pytest.fixture(scope="module")
def window() -> EventWindow:
    blocks = EventStreamGenerator(seed=33, events_per_block=3).blocks(80)
    return EventWindow.of([occurrence for block in blocks for occurrence in block])


def build_expressions(mix_name: str, operators: int):
    options = dict(MIXES[mix_name])
    instance_probability = 0.6 if mix_name == "instance-heavy" else 0.0
    generator = ExpressionGenerator(
        seed=hash((mix_name, operators)) % 10_000,
        instance_probability=instance_probability,
        allow_negation=options.get("negation_weight", 0) > 0,
        precedence_weight=options.get("precedence_weight", 1.0),
        negation_weight=options.get("negation_weight", 0.5),
    )
    return generator.expressions(EXPRESSIONS_PER_CELL, operators=operators)


def measure_cell(
    window: EventWindow, mix_name: str, operators: int
) -> dict[str, float]:
    expressions = build_expressions(mix_name, operators)
    latest = window.latest_timestamp() or 1
    stats = EvaluationStats()
    start = time.perf_counter()
    for expression in expressions:
        for step in range(EVALUATIONS_PER_EXPRESSION):
            instant = 1 + (step * 7) % latest
            ts(expression, window, instant, stats=stats)
    elapsed = time.perf_counter() - start
    evaluations = len(expressions) * EVALUATIONS_PER_EXPRESSION
    return {
        "microseconds_per_eval": 1e6 * elapsed / evaluations,
        "lookups_per_eval": stats.primitive_lookups / evaluations,
        "nodes_per_eval": stats.node_visits / evaluations,
    }


def test_x3_expression_scaling(benchmark, window):
    rows = []
    table = {}
    for mix_name in MIXES:
        for operators in SIZES:
            cell = measure_cell(window, mix_name, operators)
            table[(mix_name, operators)] = cell
            rows.append(
                [
                    mix_name,
                    operators,
                    f"{cell['microseconds_per_eval']:.1f}",
                    f"{cell['lookups_per_eval']:.1f}",
                    f"{cell['nodes_per_eval']:.1f}",
                ]
            )

    print()
    print(
        render_table(
            [
                "operator mix",
                "operators",
                "us / evaluation",
                "primitive lookups",
                "nodes visited",
            ],
            rows,
            title="X3 — ts evaluation cost vs. expression size and operator mix",
        )
    )

    # Benchmark one representative configuration (precedence-heavy, 8 operators).
    expressions = build_expressions("precedence-heavy", 8)
    latest = window.latest_timestamp() or 1

    def evaluate_once():
        return [ts(expression, window, latest) for expression in expressions]

    benchmark(evaluate_once)

    # Shape checks: work grows with expression size for every mix, and the
    # instance-heavy mix pays for the per-object lift.
    for mix_name in MIXES:
        small = table[(mix_name, SIZES[0])]["nodes_per_eval"]
        large = table[(mix_name, SIZES[-1])]["nodes_per_eval"]
        assert large > small
    boolean_cost = table[("boolean (conj/disj)", 8)]["lookups_per_eval"]
    instance_cost = table[("instance-heavy", 8)]["lookups_per_eval"]
    assert instance_cost > boolean_cost
