"""E2 — the §3.2 worked timelines of the instance-oriented operators.

Re-evaluates the per-object activation traces of the paper's §3.2 examples
(primitive per object, instance conjunction, instance disjunction, instance
negation, instance precedence) and the set-level behaviour of instance
expressions embedded in set-oriented contexts.
"""

from __future__ import annotations

import pytest

from repro.analysis import ots_trace, render_traces
from repro.core import ots, parse_expression, ts
from repro.events.event import EventOccurrence, EventType, Operation
from repro.events.event_base import EventWindow

CREATE_STOCK = EventType(Operation.CREATE, "stock")
MODIFY_QTY = EventType(Operation.MODIFY, "stock", "quantity")
MODIFY_MIN = EventType(Operation.MODIFY, "stock", "minquantity")
MODIFY_SHOW = EventType(Operation.MODIFY, "show", "quantity")


@pytest.fixture(scope="module")
def window() -> EventWindow:
    """§3.2 history: creations on o1/o2, quantity updates on o1/o3, min update on o1."""
    return EventWindow.of(
        [
            EventOccurrence(1, CREATE_STOCK, "o1", 1),
            EventOccurrence(2, CREATE_STOCK, "o2", 2),
            EventOccurrence(3, MODIFY_MIN, "o1", 3),
            EventOccurrence(4, MODIFY_QTY, "o1", 4),
            EventOccurrence(5, MODIFY_QTY, "o3", 4),
            EventOccurrence(6, MODIFY_SHOW, "p1", 5),
        ]
    )


CASES = [
    # (expression, oid, {instant: expected ots})
    ("create(stock)", "o1", {1: 1, 2: 1, 5: 1}),
    ("create(stock)", "o2", {1: -1, 2: 2, 5: 2}),
    ("create(stock) += modify(stock.quantity)", "o1", {2: -2, 4: 4, 6: 4}),
    ("create(stock) += modify(stock.quantity)", "o2", {4: -4, 6: -6}),
    ("create(stock) ,= modify(stock.quantity)", "o3", {2: -2, 4: 4, 6: 4}),
    ("-=create(stock)", "o3", {2: 2, 6: 6}),
    ("-=create(stock)", "o1", {2: -1, 6: -1}),
    ("modify(stock.minquantity) <= modify(stock.quantity)", "o1", {3: -3, 4: 4, 6: 4}),
    ("modify(stock.minquantity) <= modify(stock.quantity)", "o3", {6: -6}),
]

SET_LEVEL_CASES = [
    # instance expressions used inside set-oriented contexts (§3.2 examples)
    ("modify(show.quantity) + (create(stock) <= modify(stock.quantity))", 6, True),
    ("modify(show.quantity) + (create(stock) += modify(stock.quantity))", 6, True),
    ("modify(show.quantity) + -=(create(stock) += modify(stock.quantity))", 6, False),
]


def evaluate_cases(window: EventWindow) -> list[int]:
    values: list[int] = []
    for text, oid, expectations in CASES:
        expression = parse_expression(text)
        for instant in sorted(expectations):
            values.append(ots(expression, window, instant, oid))
    return values


def test_sec32_instance_oriented_timelines(benchmark, window):
    values = benchmark(evaluate_cases, window)

    index = 0
    for text, oid, expectations in CASES:
        for instant in sorted(expectations):
            assert values[index] == expectations[instant], (text, oid, instant)
            index += 1

    probe_instants = [1, 2, 3, 4, 5, 6]
    traces = [
        ots_trace(
            parse_expression("create(stock) += modify(stock.quantity)"),
            window,
            oid,
            instants=probe_instants,
            label=f"(create += modify) on {oid}",
        )
        for oid in ("o1", "o2", "o3")
    ]
    print()
    print(render_traces(traces, title="§3.2 — instance conjunction per object"))

    for text, instant, expected_active in SET_LEVEL_CASES:
        value = ts(parse_expression(text), window, instant)
        assert (value > 0) is expected_active, text
