"""F3/F4 — Fig. 3 (the example Event Base) and Fig. 4 (event attribute functions).

Rebuilds the paper's seven-row EB and re-evaluates the accessor functions
``type(e) / obj(e) / timestamp(e) / event_on_class(e)`` on the same EIDs the
paper uses as examples.  The benchmark measures the replay plus the accessor
look-ups.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.events.event_base import EventBase
from repro.workloads.stock import FIGURE3_ROWS, build_figure3_event_base


def replay_and_probe() -> EventBase:
    event_base = build_figure3_event_base()
    for eid in range(1, 8):
        event_base.type_of(eid)
        event_base.obj(eid)
        event_base.timestamp(eid)
        event_base.event_on_class(eid)
    return event_base


def test_fig3_event_base_and_fig4_accessors(benchmark):
    event_base = benchmark(replay_and_probe)

    rows = [
        [f"e{occ.eid}", str(occ.event_type), str(occ.oid), f"t{occ.timestamp}"]
        for occ in event_base.occurrences
    ]
    print()
    print(render_table(["EID", "event type", "OID", "time stamp"], rows,
                       title="Fig. 3 — example Event Base"))

    fig4_rows = [
        ["type(e1)", str(event_base.type_of(1))],
        ["obj(e3)", str(event_base.obj(3))],
        ["type(e5)", str(event_base.type_of(5))],
        ["obj(e5)", str(event_base.obj(5))],
        ["timestamp(e5)", f"t{event_base.timestamp(5)}"],
        ["event_on_class(e1)", event_base.event_on_class(1)],
        ["type(e7)", str(event_base.type_of(7))],
        ["obj(e7)", str(event_base.obj(7))],
        ["timestamp(e7)", f"t{event_base.timestamp(7)}"],
        ["event_on_class(e7)", event_base.event_on_class(7)],
    ]
    print(render_table(["function", "value"], fig4_rows,
                       title="Fig. 4 — event attribute functions over the Fig. 3 EB"))

    # The replay matches the paper's rows exactly.
    assert len(event_base) == len(FIGURE3_ROWS) == 7
    assert str(event_base.type_of(1)) == "create(stock)"
    assert event_base.obj(3) == "o3"
    assert str(event_base.type_of(5)) == "modify(stock.quantity)"
    assert event_base.obj(5) == "o1"
    assert event_base.event_on_class(4) == "notFilledOrder"
    assert str(event_base.type_of(7)) == "delete(stock)"
    # e3 and e4 share their time stamp (same block), as in the paper.
    assert event_base.timestamp(3) == event_base.timestamp(4)
