"""X6 — trigger-check throughput: materialized windows vs. zero-copy views.

The seed implementation rebuilt an :class:`EventWindow` — a full copy and
re-index of the Event Base slice — for every rule on every execution block,
and sampled ``ts`` at every distinct instant of that window.  This bench
quantifies the effect of the PR-1 hot-path rework (zero-copy
:class:`BoundedView` + per-rule incremental :class:`TriggerMemo`): steady-state
trigger-check throughput as a function of event-base size and rule count, old
copy path vs. new view path.

The rule pool is half "monitor" rules that never trigger (their expression is
conjoined with an event type that never occurs — the worst case: every check
must scan) and half "reactive" rules that trigger and consume normally.  The
old path is measured on a sub-sample of rules/blocks (it is far too slow for
the full grid) and reported as a per-check rate, which is fair because its
per-check cost does not depend on how many checks are run.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR1.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x6_window_scaling.py

The pytest entry point runs a reduced configuration and asserts the ≥5x
acceptance criterion plus old/new decision equivalence.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import render_table
from repro.core.expressions import EventExpression, Primitive, SetConjunction
from repro.core.triggering import TriggerMemo, is_triggered
from repro.events.clock import Timestamp
from repro.events.event import EventType, Operation
from repro.events.event_base import EventBase, EventWindow
from repro.workloads.generator import EventStreamGenerator, ExpressionGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR1.json"

#: An event type that never occurs in the generated streams: conjoining it
#: keeps a rule forever untriggered, forcing the full existential scan.
GHOST = EventType(Operation.CREATE, "ghost")

EVENT_SWEEP = [2_000, 10_000, 50_000]
RULE_SWEEP = [25, 50, 100]
HEADLINE_EVENTS = 50_000
HEADLINE_RULES = 100


@dataclass
class _RuleState:
    """Minimal per-rule state shared by both measured paths."""

    expression: EventExpression
    last_consideration: Timestamp | None = None
    triggerings: int = 0
    memo: TriggerMemo = field(default_factory=TriggerMemo)

    def consume(self, now: Timestamp) -> None:
        self.triggerings += 1
        self.last_consideration = now
        self.memo.clear()


def build_rules(count: int, seed: int = 61) -> list[_RuleState]:
    generator = ExpressionGenerator(seed=seed, instance_probability=0.15)
    rules: list[_RuleState] = []
    for index, expression in enumerate(generator.expressions(count, operators=2)):
        if index % 2 == 0:
            expression = SetConjunction(expression, Primitive(GHOST))
        rules.append(_RuleState(expression))
    return rules


def build_history(events: int, measured_blocks: int, events_per_block: int = 4):
    """Pre-filled EB plus the blocks to measure over (same generated stream)."""
    generator = EventStreamGenerator(seed=29, events_per_block=events_per_block)
    event_base = EventBase()
    prefill_blocks = max(0, events // events_per_block - measured_blocks)
    for block in generator.blocks(prefill_blocks):
        event_base.extend(block)
    measured = generator.blocks(measured_blocks)
    return event_base, measured


def run_old_path(event_base: EventBase, blocks, rules: list[_RuleState]) -> dict:
    """The seed hot path: materialize an EventWindow per rule per block.

    The untimed warm-up round mirrors run_new_path so the two paths face the
    measured blocks with identical rule state (it does not change the old
    path's per-check cost, which is stateless).
    """
    warmup_now = event_base.latest_timestamp()
    if warmup_now is not None:
        for rule in rules:
            window = EventWindow(
                event_base, after=rule.last_consideration, until=warmup_now
            )
            decision = is_triggered(
                rule.expression, window, rule.last_consideration, warmup_now
            )
            if decision.triggered:
                rule.consume(warmup_now)
    checks = 0
    started = time.perf_counter()
    for block in blocks:
        event_base.extend(block)
        now = block[-1].timestamp
        for rule in rules:
            window = EventWindow(event_base, after=rule.last_consideration, until=now)
            decision = is_triggered(
                rule.expression, window, rule.last_consideration, now
            )
            checks += 1
            if decision.triggered:
                rule.consume(now)
    elapsed = time.perf_counter() - started
    return {"checks": checks, "seconds": elapsed, "checks_per_sec": checks / elapsed}


def run_new_path(event_base: EventBase, blocks, rules: list[_RuleState]) -> dict:
    """The PR-1 hot path: zero-copy view + incremental memo.

    One untimed check round runs first so every rule's memo covers the
    pre-filled history: that is the steady state of a Trigger Support that has
    been running since the transaction began (it checks after every block, so
    it never faces a cold multi-thousand-instant scan).  The old path needs no
    warm-up — it is stateless and every check costs the same.
    """
    warmup_now = event_base.latest_timestamp()
    if warmup_now is not None:
        for rule in rules:
            decision = is_triggered(
                rule.expression,
                event_base,
                rule.last_consideration,
                warmup_now,
                memo=rule.memo,
            )
            if decision.triggered:
                rule.consume(warmup_now)
    checks = 0
    started = time.perf_counter()
    for block in blocks:
        event_base.extend(block)
        now = block[-1].timestamp
        for rule in rules:
            decision = is_triggered(
                rule.expression,
                event_base,
                rule.last_consideration,
                now,
                memo=rule.memo,
            )
            checks += 1
            if decision.triggered:
                rule.consume(now)
    elapsed = time.perf_counter() - started
    return {"checks": checks, "seconds": elapsed, "checks_per_sec": checks / elapsed}


def measure_configuration(
    events: int,
    rules: int,
    new_blocks: int = 25,
    old_blocks: int = 2,
    old_rules_cap: int = 10,
) -> dict:
    """Throughput of both paths at one (events, rules) grid point."""
    old_rule_count = min(rules, old_rules_cap)
    event_base, blocks = build_history(events, old_blocks)
    old = run_old_path(event_base, blocks, build_rules(old_rule_count))
    event_base, blocks = build_history(events, new_blocks)
    new = run_new_path(event_base, blocks, build_rules(rules))
    return {
        "events": events,
        "rules": rules,
        "old_rules_measured": old_rule_count,
        "old_blocks_measured": old_blocks,
        "new_blocks_measured": new_blocks,
        "old_checks_per_sec": round(old["checks_per_sec"], 1),
        "new_checks_per_sec": round(new["checks_per_sec"], 1),
        "speedup": round(new["checks_per_sec"] / old["checks_per_sec"], 1),
    }


def check_equivalence(events: int = 800, rules: int = 12, blocks: int = 12) -> dict:
    """Both paths must make identical decisions on an identical scenario."""
    event_base, measured = build_history(events, blocks)
    old_rules = build_rules(rules)
    old = run_old_path(event_base, measured, old_rules)
    event_base, measured = build_history(events, blocks)
    new_rules = build_rules(rules)
    new = run_new_path(event_base, measured, new_rules)
    old_counts = [rule.triggerings for rule in old_rules]
    new_counts = [rule.triggerings for rule in new_rules]
    assert old_counts == new_counts, (
        f"old/new trigger decisions diverged: {old_counts} vs {new_counts}"
    )
    assert old["checks"] == new["checks"]
    return {
        "events": events,
        "rules": rules,
        "blocks": blocks,
        "triggerings": sum(new_counts),
    }


def run_sweeps() -> dict:
    """Full grid: event-base size sweep, rule-count sweep, headline point."""
    event_rows = [
        measure_configuration(events, HEADLINE_RULES) for events in EVENT_SWEEP
    ]
    rule_rows = [measure_configuration(10_000, rules) for rules in RULE_SWEEP]
    headline = next(row for row in event_rows if row["events"] == HEADLINE_EVENTS)
    return {
        "benchmark": "x6_window_scaling",
        "description": (
            "Steady-state trigger-check throughput (checks/sec), seed copy path "
            "(EventWindow per rule per block, full instant scan) vs. PR-1 view "
            "path (BoundedView + incremental TriggerMemo)."
        ),
        "headline": headline,
        "event_base_sweep": event_rows,
        "rule_count_sweep": rule_rows,
        "equivalence": check_equivalence(),
    }


def render(results: dict) -> str:
    rows = [
        [
            row["events"],
            row["rules"],
            row["old_checks_per_sec"],
            row["new_checks_per_sec"],
            f"{row['speedup']}x",
        ]
        for row in results["event_base_sweep"] + results["rule_count_sweep"]
    ]
    return render_table(
        ["events", "rules", "old checks/s", "new checks/s", "speedup"],
        rows,
        title="X6 — trigger-check throughput, copy path vs. view path",
    )


def main() -> None:
    results = run_sweeps()
    print(render(results))
    RESULTS_FILE.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {RESULTS_FILE}")
    headline = results["headline"]
    print(
        f"headline: {headline['events']} events x {headline['rules']} rules -> "
        f"{headline['speedup']}x"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x6_decisions_are_identical_between_paths():
    check_equivalence()


def test_x6_view_path_is_at_least_5x_faster(benchmark):
    row = measure_configuration(5_000, 20, new_blocks=15, old_blocks=2)
    print()
    print(
        render_table(
            ["events", "rules", "old checks/s", "new checks/s", "speedup"],
            [[
                row["events"],
                row["rules"],
                row["old_checks_per_sec"],
                row["new_checks_per_sec"],
                f"{row['speedup']}x",
            ]],
            title="X6 (reduced) — trigger-check throughput",
        )
    )
    assert row["speedup"] >= 5.0

    event_base, blocks = build_history(5_000, 15)
    rules = build_rules(20)

    def steady_state():
        # Re-check every rule against the current EB without growing it:
        # pure view + memo overhead.
        now = event_base.latest_timestamp() or 1
        for rule in rules:
            is_triggered(
                rule.expression,
                event_base,
                rule.last_consideration,
                now,
                memo=rule.memo,
            )

    for block in blocks:
        event_base.extend(block)
    benchmark(steady_state)


if __name__ == "__main__":
    main()
