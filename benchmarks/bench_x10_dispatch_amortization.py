"""X10 — micro-batched worker dispatch: trips scale with trips, not blocks.

PR 4 measured the process shard mode's fixed per-block cost — ~250–500 µs
per consulted worker round trip plus snapshot encoding — and PR 5 amortizes
it: the stream path coalesces up to ``batch_blocks`` consecutive blocks into
one dispatch trip, the coordinator plans the whole trip up front and
contacts each consulted worker **once per trip** (one combined Event-Base
delta plus N ordered work segments with per-block replies, applied serially
in definition order).  This bench sweeps the batch size on the X9 grid's
check-heavy stream and shows:

* **round trips scale with trips** — ``trips == ceil(blocks / batch)``, so
  per-block round trips fall as ``1 / batch`` (structural, asserted);
* **per-block dispatch overhead falls** — the process-vs-serial check-cost
  gap (identical exact ``ts`` work, so the gap is pure transport) shrinks as
  the batch grows;
* **behavioral invisibility** — every batch size asserts identical
  triggering decisions, selections and Trigger Support stats across the
  single table and the serial / threads / processes coordinator modes
  (``tests/cluster/test_mode_equivalence.py`` pins the same property per
  rule counter for batch sizes 1–8).

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR5.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x10_dispatch_amortization.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the structural acceptance criteria.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import render_table
from repro.workloads.dispatch_amortization import (
    measure_dispatch_amortization,
    render_x10,
    run_x10_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR5.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR5.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x10_sweeps(smoke=args.smoke)
    print(render_x10(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    amortization = headline["amortization"]
    print(
        f"headline: {headline['rules']} rules, {headline['workers']} workers -> "
        f"round trips per block {amortization['round_trips_per_block_at_batch_1']} "
        f"at batch 1 vs {amortization['round_trips_per_block_at_batch_max']} at "
        f"batch {headline['batch_sizes'][-1]} "
        f"({amortization['trips_at_batch_1']} trips -> "
        f"{amortization['trips_at_batch_max']} trips over "
        f"{headline['rows'][0]['blocks']} blocks); per-block dispatch overhead "
        f"{amortization['overhead_us_per_block_at_batch_1']} µs -> "
        f"{amortization['overhead_us_per_block_at_batch_max']} µs"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x10_every_mode_identical_at_every_batch_size():
    # measure_dispatch_amortization asserts triggering + selection + stats
    # equivalence itself, per batch size, across serial / threads /
    # processes and the single table.
    measure_dispatch_amortization(
        400, workers=2, blocks=12, warmup_blocks=2, batch_sizes=(1, 2, 4)
    )


def test_x10_round_trips_scale_with_trips_not_blocks():
    result = measure_dispatch_amortization(
        600, workers=2, blocks=16, warmup_blocks=2, batch_sizes=(1, 4, 8)
    )
    rows = {row["batch_blocks"]: row for row in result["rows"]}
    print()
    print(
        render_table(
            ["batch", "blocks", "trips", "round trips", "rt/blk"],
            [
                [
                    row["batch_blocks"],
                    row["blocks"],
                    row["trips"],
                    row["worker_round_trips"],
                    row["round_trips_per_block"],
                ]
                for row in result["rows"]
            ],
            title="X10 (reduced) — trips vs blocks",
        )
    )
    for batch, row in rows.items():
        # The structural acceptance criterion: one trip per micro-batch.
        assert row["trips"] == row["expected_trips"], row
        # Each trip contacts each consulted worker at most once.
        assert row["worker_round_trips"] <= row["trips"] * result["workers"], row
    # Per-block round trips must fall monotonically with the batch size.
    assert (
        rows[8]["round_trips_per_block"]
        < rows[4]["round_trips_per_block"]
        < rows[1]["round_trips_per_block"]
    ), rows


def test_x10_encode_cost_amortizes():
    """One combined delta per trip: shipped bytes per block must fall too."""
    result = measure_dispatch_amortization(
        600, workers=2, blocks=16, warmup_blocks=2, batch_sizes=(1, 8)
    )
    rows = {row["batch_blocks"]: row for row in result["rows"]}
    # The per-block wire volume at batch 8 must undercut batch 1: the delta
    # rows themselves are identical, so the saving is the per-message framing
    # and the per-worker duplication of defs/segment envelopes.
    assert (
        rows[8]["bytes_shipped_per_block"] < rows[1]["bytes_shipped_per_block"]
    ), rows


if __name__ == "__main__":
    main()
