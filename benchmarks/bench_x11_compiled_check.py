"""X11 — compiled exact checks: per-rule closures vs the interpreted evaluator.

PR 6 lowers each rule's event expression into specialized closures at rule
preparation time — ``V(E)`` verdict constant-folded, per-type index handles
pre-resolved against the bound Event Base, operator dispatch unrolled with the
evaluation mode's combines baked in — and batches a dispatch trip's instants
per rule through one ``check_trip`` pass.  This bench isolates what that buys:

* **per-candidate kernel cost** — a dry, memo-less re-check of planned
  candidates on the frozen steady state, both kernels over identical windows.
  The acceptance bar is a >= 5x compiled speedup at the X7 10k-rule and X9
  4-worker grid points (asserted by the pytest entry points on reduced grids
  and by ``benchmarks/check_bench_guard.py`` on the written results);
* **end-to-end check cost** — ``check_after_block(s)`` per block with
  compiled checks off vs on, unsharded and across the coordinator modes;
* **behavioral invisibility** — every grid point asserts identical triggering
  decisions, priority-order selections and Trigger Support stats, and the
  sweep section replays compiled off/on x unsharded/serial/threads/processes
  x batch sizes 1-8 against the interpreted unsharded reference.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR6.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x11_compiled_check.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the structural acceptance criteria.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.workloads.compiled_check import (
    measure_check_kernel,
    measure_compiled_process_scaling,
    measure_compiled_sweep,
    render_x11,
    run_x11_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR6.json"

#: The PR-6 acceptance bar on the dry per-candidate kernel measurement.
MIN_CHECK_SPEEDUP = 5.0


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR6.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x11_sweeps(smoke=args.smoke)
    print(render_x11(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    speedups = [row["check_speedup"] for row in results["kernel"]] + [
        results["process"]["check_speedup"]
    ]
    headline = results["headline"]
    print(
        f"headline: {headline['rules']} rules -> per-candidate exact check "
        f"{headline['interpreted_check_us_per_candidate']} µs interpreted vs "
        f"{headline['compiled_check_us_per_candidate']} µs compiled "
        f"({headline['check_speedup']}x); X9 grid point "
        f"{results['process']['check_speedup']}x; "
        f"{results['sweep']['runs']} sweep runs byte-identical"
    )
    if not args.smoke:
        # The full-grid acceptance assertion (the guard re-checks the written
        # results with its timing tolerance; the full run must clear the bar
        # outright at every grid point).
        assert all(speedup >= MIN_CHECK_SPEEDUP for speedup in speedups), (
            f"per-candidate check speedups {speedups} below {MIN_CHECK_SPEEDUP}x"
        )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x11_compiled_identical_across_modes_and_batch_sizes():
    # measure_compiled_sweep asserts triggering + selection + stats
    # byte-identity itself, per batch size, for compiled off/on across
    # unsharded / serial / threads / processes.
    result = measure_compiled_sweep(
        rule_count=120, blocks=8, batch_sizes=(1, 3, 8), workers=2
    )
    assert result["identical"] and result["runs"] >= 3 * 8


def test_x11_process_grid_point_equivalent_with_compiled_workers():
    # The X9-style grid point: process workers compile shard-resident rules
    # themselves; decisions, selections and stats must match the single-table
    # interpreted reference (asserted inside the measurement).
    result = measure_compiled_process_scaling(
        300,
        workers=2,
        blocks=8,
        warmup_blocks=2,
        events_per_block=12,
        types_per_shape=(4, 8),
        repetitions=2,
        sample=16,
    )
    assert result["check_speedup"] > 1.0


def test_x11_kernel_agrees_and_speeds_up():
    # Structural: the dry kernel asserts per-candidate decision + stats
    # equality internally; the speedup floor here is deliberately loose
    # (CI machines are noisy) — the >= 5x bar is enforced on the written
    # results by benchmarks/check_bench_guard.py.
    result = measure_check_kernel(
        300, blocks=10, warmup_blocks=2, repetitions=4, sample=24
    )
    assert result["candidates_sampled"] > 0
    assert result["check_speedup"] > 1.5


if __name__ == "__main__":
    main()
