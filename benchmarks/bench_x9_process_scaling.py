"""X9 — multi-process shard workers vs every other execution mode (PR 4).

PR 3's thread pool bought latency, not throughput: under the GIL the
per-shard checks still serialize.  PR 4 moves the evaluate phase out of
process — :class:`~repro.cluster.process_pool.ProcessShardPool` workers own
their shard's expressions and incremental memos plus a mirror Event Base
grown from per-block :class:`~repro.events.event_base.WindowSnapshot`
deltas, and the coordinator applies their decisions serially in definition
order.  This bench quantifies the whole mode matrix on the X8 grid's
check-heavy configuration (dense recurring shapes, large blocks, ghost
monitors):

* **planning** — the process mode plans exactly like the serial coordinator
  (route cache + per-shard plan caches, coordinator-side, before dispatch),
  so its dry per-block planning cost beats the single-table planner by the
  same structural margin BENCH_PR3.json established;
* **end-to-end checks per mode** — identical exact ``ts`` work everywhere
  (asserted per grid point, stats included), plus each mode's dispatch
  overhead.  The process column decomposes that overhead into snapshot/
  encode cost and worker round trips; on a single-core host the round trips
  serialize behind the checks themselves, so the reported ratio there is the
  floor — the evaluate phase is the term that scales with cores.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR4.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x9_process_scaling.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the acceptance criteria: every mode behaviorally identical, process
planning beating the single-table planner, and the transport overhead
bounded relative to the check work it ships.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import render_table
from repro.workloads.process_scaling import (
    measure_process_scaling,
    render_x9,
    run_x9_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR4.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR4.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x9_sweeps(smoke=args.smoke)
    print(render_x9(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    print(
        f"headline: {headline['rules']} rules, {headline['workers']} workers -> "
        f"process-mode planning {headline['planning_speedup']}x the single table "
        f"({headline['single_plan_us_per_block']} µs/block vs "
        f"{headline['process_plan_us_per_block']} µs/block); end-to-end process "
        f"check ratio {headline['check_ratio_vs_single']['processes']}x on a "
        f"{results['host_cpus']}-CPU host "
        f"(dispatch overhead {headline['process_transport']['dispatch_overhead_us_per_block']} µs/block "
        f"vs {headline['check_us_per_block']['single']} µs/block of check work)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x9_every_mode_behaviorally_identical():
    # measure_process_scaling asserts triggering + selection + stats
    # equivalence itself, across serial / threads / processes and the
    # single table.
    measure_process_scaling(
        400, workers=2, blocks=8, warmup_blocks=2, planning_repetitions=2
    )


def test_x9_process_planning_beats_single_table():
    # Best-of-8 passes: the planning loops are microsecond-scale and a busy
    # box (or a concurrently running benchmark) can distort best-of-3.
    row = measure_process_scaling(
        3_000, workers=4, blocks=10, warmup_blocks=2, planning_repetitions=8
    )
    print()
    print(
        render_table(
            ["rules", "single plan µs/blk", "coord plan µs/blk", "speedup"],
            [
                [
                    row["rules"],
                    row["single_plan_us_per_block"],
                    row["process_plan_us_per_block"],
                    f"{row['planning_speedup']}x",
                ]
            ],
            title="X9 (reduced) — planning cost",
        )
    )
    # The acceptance criterion at a CI-sized grid point: the coordinator
    # planning the process mode runs on must beat the single-table planner
    # outright (>=10k-rule runs show larger margins; head-room for noise).
    assert row["planning_speedup"] >= 1.2, row


def test_x9_transport_overhead_bounded():
    """Dispatch overhead must stay within a small multiple of the check work.

    On a multi-core host the overhead is overlapped by the parallel evaluate
    phase; on a single-core host it is pure cost, so the bound is generous —
    the point is to catch pathological regressions (per-block def reshipping,
    unbounded deltas), not to pin a ratio.
    """
    row = measure_process_scaling(
        800, workers=2, blocks=10, warmup_blocks=2, planning_repetitions=2
    )
    transport = row["process_transport"]
    check_work = row["check_us_per_block"]["single"]
    assert transport["dispatch_overhead_us_per_block"] <= max(
        4_000.0, 4.0 * check_work
    ), row
    # Steady state ships deltas and work items only — definitions went once
    # during warm-up; a few hundred bytes per block per worker is the regime.
    per_trip = transport["bytes_shipped"] / max(1, transport["worker_round_trips"])
    assert per_trip < 64_000, transport


if __name__ == "__main__":
    main()
