"""X8 — sharded trigger planning and pipelined ingestion (PR 3).

PR 2 made per-block planning flat in the rule count via the inverted
subscription index; this bench quantifies the PR-3 scale-out subsystem built
on top of it (``repro/cluster/``):

* **sharded planning** — the :class:`ShardCoordinator` fans each block's type
  signature out to the shards owning the matching ``(operation, class)``
  buckets.  The win over the single-table planner is structural: the full
  signature hits the coordinator's route cache, each shard resolves its
  sub-signature through a memoized, definition-ordered subscriber tuple, and
  no per-block bucket union or candidate sort remains.  Sub-signature keys
  recur far more often than full signatures, so the caches stay warm across
  varying block shapes.  Measured dry on each configuration's steady state,
  warm caches, over shape-recurring streams — the regime a long-running
  server sits in.  The exact ``ts`` checks are the identical set of
  computations on every configuration (asserted here and in
  ``tests/cluster/test_shard_equivalence.py``).
* **end-to-end check cost** — same comparison including the checks.
* **pipelined ingestion** — ``StreamIngestor``'s bounded-queue hand-off
  (producer builds occurrences and signatures while the consumer checks)
  against direct ``run_stream_block`` calls.

Run as a script to execute the full sweep and write machine-readable results
to ``BENCH_PR3.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_x8_shard_scaling.py [--smoke]

``--smoke`` runs a tiny grid (seconds, for CI) and writes nothing unless
``--out`` is given.  The pytest entry points run reduced configurations and
assert the acceptance criteria: sharded planning beats the single-table
planner, decisions identical, pipelining not slower than direct ingestion by
more than a small margin.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import render_table
from repro.workloads.shard_scaling import (
    measure_pipelined_ingestion,
    measure_shard_scaling,
    render_x8,
    run_x8_sweeps,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_PR3.json"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny grid for CI")
    parser.add_argument(
        "--out",
        default=None,
        help="results file (default: BENCH_PR3.json; smoke writes nowhere)",
    )
    args = parser.parse_args(argv)
    results = run_x8_sweeps(smoke=args.smoke)
    print(render_x8(results))
    out = Path(args.out) if args.out else (None if args.smoke else RESULTS_FILE)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {out}")
    headline = results["headline"]
    reference = headline["reference_shards"]
    print(
        f"headline: {headline['rules']} rules -> sharded planning "
        f"{headline['planning_speedup']}x at {reference} shards "
        f"(single {headline['single_plan_us_per_block']} µs/block vs sharded "
        f"{headline['sharded_plan_us_per_block'][str(reference)]} µs/block); "
        f"pipelined ingestion {results['ingestion']['pipelining_ratio']}x direct"
    )


# ---------------------------------------------------------------------------
# pytest entry points (reduced configuration)
# ---------------------------------------------------------------------------


def test_x8_sharded_and_single_decisions_are_identical():
    # measure_shard_scaling asserts triggering + selection equivalence itself,
    # for every shard count in the sweep.
    measure_shard_scaling(
        400, shard_counts=[1, 3, 4], blocks=10, warmup_blocks=2, planning_repetitions=2
    )


def test_x8_sharded_planning_beats_single_table(benchmark):
    small = measure_shard_scaling(
        500, shard_counts=[4], blocks=10, warmup_blocks=2, planning_repetitions=3
    )
    large = measure_shard_scaling(
        3_000, shard_counts=[4], blocks=10, warmup_blocks=2, planning_repetitions=3
    )
    print()
    print(
        render_table(
            ["rules", "single plan µs/blk", "4-shard plan µs/blk", "speedup"],
            [
                [
                    row["rules"],
                    row["single_plan_us_per_block"],
                    row["sharded_plan_us_per_block"]["4"],
                    f"{row['planning_speedup']}x",
                ]
                for row in (small, large)
            ],
            title="X8 (reduced) — planning cost",
        )
    )
    # The acceptance criterion, at a CI-sized grid point: the sharded
    # coordinator must beat the single-table planner outright (the full run
    # at >=10k rules shows larger margins; keep head-room for noisy boxes).
    assert large["planning_speedup"] >= 1.2, large

    from repro.workloads.rule_scaling import build_scaling_universe
    from repro.workloads.shard_scaling import (
        ScalingWorkload,
        build_shard_rules,
        build_shaped_blocks,
    )

    universe = build_scaling_universe(3_000)
    workload = ScalingWorkload(build_shard_rules(3_000, universe), shards=4)
    stream = build_shaped_blocks(universe, 12, seed=5)
    for block in stream:
        workload.feed_block(block)
    signatures = [frozenset(o.event_type for o in block) for block in stream]

    def plan_all():
        for signature in signatures:
            workload.support.plan_sharded(signature)

    benchmark(plan_all)


def test_x8_pipelined_ingestion_not_slower():
    row = measure_pipelined_ingestion(rule_count=300, blocks=40, events_per_block=32)
    # The pipeline must at least roughly keep up with the direct path (the
    # full run shows >1x; generous head-room for noisy CI boxes).
    assert row["pipelining_ratio"] >= 0.7, row


if __name__ == "__main__":
    main()
