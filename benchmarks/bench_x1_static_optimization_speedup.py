"""X1 — effect of the §5.1 static optimization on the Trigger Support.

The paper's claim is qualitative: "the evaluation of the ts function is
required when certain operations occur which have the potential of changing
the sign of ts, and can be skipped otherwise".  This bench quantifies it on a
synthetic workload: a pool of composite-event subscriptions monitored over a
random event stream, detected once by the naive strategy (recompute every rule
after every block) and once with the V(E) filter.

Reported per rule-set size: ts computations, skipped recomputations and
triggerings (which must be identical between the two strategies).  The
benchmark measures the filtered detector on the largest configuration.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines import FilteredDetector, NaiveDetector, Subscription
from repro.workloads.generator import EventStreamGenerator, ExpressionGenerator

RULE_SET_SIZES = [4, 16, 64]
BLOCKS = 150


def build_subscriptions(count: int) -> list[Subscription]:
    generator = ExpressionGenerator(seed=100 + count, instance_probability=0.2)
    return [
        Subscription(f"r{index}", expression)
        for index, expression in enumerate(generator.expressions(count, operators=3))
    ]


def build_stream():
    return EventStreamGenerator(seed=42, events_per_block=2).blocks(BLOCKS)


def run_configuration(rules: int) -> dict[str, int]:
    stream = build_stream()
    naive = NaiveDetector(build_subscriptions(rules))
    filtered = FilteredDetector(build_subscriptions(rules))
    naive_report = naive.feed_stream(stream)
    filtered_report = filtered.feed_stream(stream)
    assert naive_report.triggerings == filtered_report.triggerings
    return {
        "rules": rules,
        "naive_ts": naive_report.ts_computations,
        "filtered_ts": filtered_report.ts_computations,
        "skipped": filtered_report.filter_skips,
        "triggerings": filtered_report.triggerings,
        "naive_lookups": naive_report.evaluation.primitive_lookups,
        "filtered_lookups": filtered_report.evaluation.primitive_lookups,
    }


@pytest.fixture(scope="module")
def sweep_rows() -> list[dict[str, int]]:
    return [run_configuration(rules) for rules in RULE_SET_SIZES]


def test_x1_static_optimization_sweep(benchmark, sweep_rows):
    largest = RULE_SET_SIZES[-1]
    subscriptions = build_subscriptions(largest)
    stream = build_stream()
    detector = FilteredDetector(subscriptions)

    def detect():
        detector.reset()
        return detector.feed_stream(stream).triggerings

    benchmark(detect)

    rows = [
        [
            row["rules"],
            row["naive_ts"],
            row["filtered_ts"],
            row["skipped"],
            f"{row['naive_ts'] / max(1, row['filtered_ts']):.2f}x",
            row["triggerings"],
        ]
        for row in sweep_rows
    ]
    print()
    print(
        render_table(
            [
                "rules",
                "naive ts comp.",
                "filtered ts comp.",
                "skipped",
                "reduction",
                "triggerings",
            ],
            rows,
            title=f"X1 — ts recomputations with and without V(E) ({BLOCKS} blocks)",
        )
    )

    for row in sweep_rows:
        # The optimization never does more work than the naive strategy and,
        # on a mixed workload, skips a substantial share of the recomputations.
        assert row["filtered_ts"] <= row["naive_ts"]
        assert row["skipped"] > 0
        assert row["filtered_lookups"] <= row["naive_lookups"]
    # The relative saving should not degrade as the rule set grows: the filter
    # is per-rule, so its effect scales with the number of rules.
    first = sweep_rows[0]
    last = sweep_rows[-1]
    assert last["naive_ts"] - last["filtered_ts"] >= first["naive_ts"] - first[
        "filtered_ts"
    ]
